"""Tests for the experiment harness (repro.experiments)."""

import pytest

from repro.experiments import exp_e_scaling, exp_lower_bound
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import (
    clique_with_edges,
    clique_workload,
    dense_random,
    hub,
    join_instance,
    planted,
    skewed,
    sparse_random,
    triangle_free,
    tripartite,
)
from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import count_triangles_in_memory
from repro.exceptions import AlgorithmError
from repro.graph.validation import check_canonical_edges

PARAMS = MachineParams(memory_words=64, block_words=8)


class TestWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: sparse_random(300),
            lambda: dense_random(300),
            lambda: skewed(300),
            lambda: hub(300),
            lambda: triangle_free(300),
            lambda: planted(10, 100),
            lambda: tripartite(6),
            lambda: clique_workload(12),
            lambda: clique_with_edges(300),
        ],
    )
    def test_workloads_are_canonical_and_named(self, factory):
        workload = factory()
        check_canonical_edges(workload.edges)
        assert workload.name
        assert workload.num_edges == len(workload.edges)
        assert workload.num_edges > 0

    def test_sparse_random_is_reproducible(self):
        assert sparse_random(200).edges == sparse_random(200).edges

    def test_planted_has_exact_triangle_count(self):
        workload = planted(7, 50)
        assert count_triangles_in_memory(workload.edges) == 7

    def test_clique_with_edges_hits_target_roughly(self):
        workload = clique_with_edges(500)
        assert 350 <= workload.num_edges <= 700

    def test_hub_has_a_vertex_adjacent_to_everything(self):
        workload = hub(300)
        top_rank = max(v for edge in workload.edges for v in edge)
        hub_degree = sum(1 for u, v in workload.edges if top_rank in (u, v))
        assert hub_degree >= workload.num_edges // 4

    def test_join_instance_is_tripartite(self):
        instance = join_instance(5)
        assert instance.graph.num_vertices == 15


class TestRunner:
    def test_run_on_edges_matches_oracle(self):
        workload = sparse_random(200)
        expected = count_triangles_in_memory(workload.edges)
        for algorithm in ("cache_aware", "hu_tao_chung", "dementiev"):
            result = run_on_edges(workload.edges, algorithm, PARAMS, seed=1)
            assert result.triangle_count == expected
            assert result.total_ios == result.reads + result.writes
            assert result.num_edges == workload.num_edges

    def test_run_on_edges_cache_oblivious(self):
        workload = sparse_random(120)
        expected = count_triangles_in_memory(workload.edges)
        result = run_on_edges(workload.edges, "cache_oblivious", PARAMS, seed=1)
        assert result.triangle_count == expected
        assert result.phases is None

    def test_run_on_edges_reports_phases_for_cache_aware(self):
        workload = sparse_random(200)
        result = run_on_edges(workload.edges, "cache_aware", PARAMS, seed=1)
        assert result.phases and "triples" in result.phases

    def test_unknown_algorithm_raises(self):
        with pytest.raises(AlgorithmError):
            run_on_edges([(0, 1)], "nope", PARAMS)


class TestTables:
    def test_add_row_arity_checked(self):
        table = Table("X", "t", "c", headers=("a", "b"))
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("X", "t", "c", headers=("a", "b"))
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_render_contains_everything(self):
        table = Table("EXPX", "some title", "some claim", headers=("col",))
        table.add_row(3.14159)
        table.add_note("a note")
        text = table.render()
        assert "EXPX" in text
        assert "some claim" in text
        assert "3.142" in text
        assert "a note" in text

    def test_to_dict_round_trip(self):
        table = Table("EXPX", "t", "c", headers=("a",))
        table.add_row(1)
        payload = table.to_dict()
        assert payload["rows"] == [[1]]
        assert payload["headers"] == ["a"]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 13
        assert list_experiments() == [f"EXP{i}" for i in range(1, 14)]

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("exp1") is EXPERIMENTS["EXP1"]

    def test_get_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("EXP99")

    def test_every_module_declares_metadata(self):
        for experiment_id, module in EXPERIMENTS.items():
            assert module.EXPERIMENT_ID == experiment_id
            assert module.TITLE
            assert module.CLAIM
            assert callable(module.run)


class TestQuickExperimentsEndToEnd:
    """Smoke-run the two fastest experiments end to end (the others are
    exercised by the benchmark harness to keep the unit suite quick)."""

    def test_exp4_lower_bound_quick(self):
        table = exp_lower_bound.run(quick=True)
        assert table.experiment_id == "EXP4"
        ratios = table.column("ratio")
        assert all(ratio >= 1 for ratio in ratios)

    def test_exp1_columns_are_monotone(self):
        table = exp_e_scaling.run(quick=True)
        ours = table.column("cache_aware")
        htc = table.column("hu_tao_chung")
        assert ours == sorted(ours)
        assert htc == sorted(htc)


class TestRunAllCli:
    def test_cli_quick_subset(self, capsys, tmp_path):
        from repro.experiments.run_all import main

        output_file = tmp_path / "results.txt"
        exit_code = main(
            [
                "--quick",
                "--results-dir",
                str(tmp_path / "results"),
                "--output",
                str(output_file),
                "EXP4",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "EXP4" in captured
        assert output_file.read_text().startswith("=== EXP4")
