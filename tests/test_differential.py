"""Differential property-testing harness: every algorithm against every other.

Hypothesis draws a random workload (family, size, generator seed), a
simulated machine from the (M, B) grid and an algorithm seed, then runs
**every registered algorithm** -- the paper's algorithms, the baselines and
the vectorized fast path -- through one shared
:class:`~repro.core.engine.TriangleEngine` and asserts that they emit the
identical triangle *set* (and therefore count).  The reference oracle is the
pure-Python compact-forward enumeration, but the assertion is symmetric:
any single implementation drifting from the rest fails the property.

The four workload families of the experiment harness (uniform random,
power-law, community, bipartite) are each pinned as an explicit
``@example`` so the cross-family coverage is guaranteed on every run, not
just statistically likely; ``derandomize=True`` keeps CI deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangle_set
from repro.core.engine import TriangleEngine
from repro.core.registry import algorithm_names
from repro.fastpath.arrays import HAVE_NUMPY
from repro.experiments.workloads import (
    bipartite_random,
    community,
    power_law,
    sparse_random,
)

#: The four workload families the harness must cover (ISSUE 5 acceptance).
FAMILIES = {
    "uniform": sparse_random,
    "power_law": power_law,
    "community": community,
    "bipartite": bipartite_random,
}

#: The simulated-machine grid: tiny (everything spills), the test default,
#: and a wider-block configuration.
MACHINE_GRID = ((64, 8), (256, 16), (512, 32))

families = st.sampled_from(sorted(FAMILIES))
machines = st.sampled_from(MACHINE_GRID)
#: Lower bound keeps every family's generator feasible (the sparse and
#: power-law factories derive their vertex budget from E).
edge_counts = st.integers(min_value=40, max_value=90)
seeds = st.integers(min_value=0, max_value=7)


def build_edges(family: str, num_edges: int, seed: int) -> list[tuple[int, int]]:
    """Canonical ranked edge list of one drawn workload."""
    return FAMILIES[family](num_edges, seed=seed).edges


def run_all_algorithms(
    edges: list[tuple[int, int]], machine: tuple[int, int], seed: int, algorithms=None
) -> None:
    """Assert identical triangle sets across ``algorithms`` on one engine."""
    params = MachineParams(memory_words=machine[0], block_words=machine[1])
    engine = TriangleEngine.from_canonical_edges(edges, params=params)
    oracle = triangle_set(edges)
    try:
        for algorithm in algorithms or algorithm_names():
            if algorithm.startswith("oocore") and not HAVE_NUMPY:
                # Unlike vector_*, the out-of-core backend has no
                # pure-Python fallback: it raises FastPathUnavailableError
                # by contract on a bare interpreter.
                continue
            result = engine.run(algorithm, seed=seed, collect=True)
            emitted = {tuple(sorted(t)) for t in result.triangles}
            assert result.triangle_count == len(result.triangles)
            assert emitted == oracle, (
                f"{algorithm} drifted on {len(edges)} edges (machine {machine}, seed {seed}): "
                f"missing {sorted(oracle - emitted)[:5]}, extra {sorted(emitted - oracle)[:5]}"
            )
            # Count-only runs must agree with the collected run (the fast path
            # may dispatch to a registered counter instead of the runner).
            assert engine.count(algorithm, seed=seed) == len(oracle)
    finally:
        # Releases cached substrate state -- in particular the out-of-core
        # backend's spill directory, which must not outlive the engine.
        engine.close()


@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(family=families, num_edges=edge_counts, graph_seed=seeds, machine=machines, seed=seeds)
@example(family="uniform", num_edges=60, graph_seed=1, machine=(256, 16), seed=4)
@example(family="power_law", num_edges=60, graph_seed=2, machine=(64, 8), seed=0)
@example(family="community", num_edges=80, graph_seed=3, machine=(512, 32), seed=1)
@example(family="bipartite", num_edges=50, graph_seed=4, machine=(256, 16), seed=2)
def test_all_algorithms_emit_identical_triangles(family, num_edges, graph_seed, machine, seed):
    """The full registry agrees, triangle for triangle, on random workloads."""
    edges = build_edges(family, num_edges, graph_seed)
    run_all_algorithms(edges, machine, seed)


#: The cheap in-memory backends can afford larger graphs and more examples.
FAST_BACKENDS = ("in_memory", "vector_count", "vector_enum")


@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    family=families,
    num_edges=st.integers(min_value=40, max_value=600),
    graph_seed=seeds,
    chunk_size=st.sampled_from((1, 7, 1024, 32_768)),
)
def test_fastpath_matches_oracle_at_scale(family, num_edges, graph_seed, chunk_size):
    """The vectorized kernels agree with the oracle at any chunking."""
    edges = build_edges(family, num_edges, graph_seed)
    engine = TriangleEngine.from_canonical_edges(edges)
    oracle = triangle_set(edges)
    for algorithm in ("vector_count", "vector_enum"):
        for force_python in (False, True):
            result = engine.run(
                algorithm,
                collect=True,
                options={"chunk_size": chunk_size, "force_python": force_python},
            )
            assert {tuple(sorted(t)) for t in result.triangles} == oracle
            count = engine.count(
                algorithm, options={"chunk_size": chunk_size, "force_python": force_python}
            )
            assert count == len(oracle)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_oocore_matches_fast_backends(family, tmp_path):
    """The memmap backend vs ``vector_enum`` vs ``in_memory``, per family.

    Beyond the registry-wide sweep above, this leg pins the out-of-core
    backend against the two in-memory references on a larger workload, at a
    chunking small enough that every canonicalisation pass runs multi-chunk
    (external runs + k-way merge actually merge), and asserts the spill
    directory holds no ``*.mmap`` file once the engine is closed.
    """
    pytest.importorskip("numpy")
    edges = build_edges(family, 500, 9)
    spill = tmp_path / "spill"
    engine = TriangleEngine.from_canonical_edges(edges)
    oracle = triangle_set(edges)
    options = {"spill_dir": str(spill), "chunk_rows": 64}
    sets = {}
    for algorithm in ("oocore_enum", "oocore_count", "vector_enum", "in_memory"):
        run_options = options if algorithm.startswith("oocore") else None
        result = engine.run(algorithm, collect=True, options=run_options)
        sets[algorithm] = {tuple(sorted(t)) for t in result.triangles}
        assert result.triangle_count == len(oracle)
    assert sets["oocore_enum"] == sets["vector_enum"] == sets["in_memory"] == oracle
    assert sets["oocore_count"] == oracle
    # Count-only path (the registered counter adapter) agrees too.
    assert engine.count("oocore_count", options=options) == len(oracle)
    # The spill directory is in use while the engine holds the cached store...
    assert list(spill.rglob("*.mmap")), "expected live spill files while the engine is open"
    engine.close()
    # ...and empty of spill files once it is closed.
    assert not list(spill.rglob("*.mmap")), "engine close leaked spill files"


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_sharded_runs_agree_with_oracle(family):
    """Colour-sharded execution joins the differential net (one per family)."""
    edges = build_edges(family, 70, 5)
    engine = TriangleEngine.from_canonical_edges(
        edges, params=MachineParams(memory_words=256, block_words=16)
    )
    oracle = triangle_set(edges)
    result = engine.run("cache_aware", seed=3, collect=True, shards=2)
    assert {tuple(sorted(t)) for t in result.triangles} == oracle


def test_differential_covers_every_registered_algorithm():
    """The harness sweep is the live registry, not a hand-maintained list.

    Guards against a future algorithm registering without differential
    coverage: the property above iterates ``algorithm_names()`` directly,
    so this test only needs to pin that the expected built-ins are present.
    """
    names = set(algorithm_names())
    expected = {
        "cache_aware",
        "deterministic",
        "cache_oblivious",
        "hu_tao_chung",
        "dementiev",
        "bnlj",
        "in_memory",
        "vector_count",
        "vector_enum",
        "oocore_count",
        "oocore_enum",
    }
    assert expected <= names
