"""Unit tests of the vectorized fast path and its engine edge cases.

Covers the array subsystem (canonicalisation, CSR build, kernels, batch
colouring), the ``vector_count`` / ``vector_enum`` registrations (typed
options, counter dispatch, pure-Python fallback) and the engine edge cases
the fast path must honour: empty graphs, self-loops and duplicate edges
before canonicalisation, the single-triangle graph, and ``stream()`` over a
``vector_enum`` run.
"""

from __future__ import annotations

import pytest

from repro.core.baselines.in_memory import triangle_set, triangles_in_memory
from repro.core.emit import CollectingSink
from repro.core.engine import TriangleEngine
from repro.core.registry import get_algorithm
from repro.exceptions import FastPathUnavailableError, GraphFormatError, OptionsError
from repro.fastpath import (
    HAVE_NUMPY,
    CSRAdjacency,
    canonicalize_edge_array,
    colors_for_vertices,
    count_triangles_fast,
    edge_color_pairs,
    enumerate_triangles_fast,
    iter_triangle_chunks,
    pack_edges,
)
from repro.fastpath.algorithms import VectorOptions
from repro.fastpath.arrays import canonicalize_edges_python, resolve_dtype
from repro.fastpath.kernels import count_triangles_csr, iter_triangle_chunks_csr
from repro.graph.generators import clique, erdos_renyi_gnm
from repro.graph.graph import Graph
from repro.hashing.coloring import RandomColoring

np = pytest.importorskip("numpy") if HAVE_NUMPY else None
pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")

TRIANGLE = [(0, 1), (0, 2), (1, 2)]


def ranked_edges(num_edges: int = 300, seed: int = 5) -> list[tuple[int, int]]:
    return erdos_renyi_gnm(max(12, num_edges // 3), num_edges, seed=seed).degree_order().edges


# ----------------------------------------------------------------------
# arrays: packing and canonicalisation
# ----------------------------------------------------------------------
class TestCanonicalisation:
    def test_orients_dedups_and_sorts(self):
        canonical = canonicalize_edge_array([(5, 1), (1, 5), (2, 1), (2, 5), (9, 2), (9, 5)])
        assert canonical.edge_list() == [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert canonical.num_vertices == 4
        # vertex_of maps ranks back to original labels, ascending by degree
        # then label: 1 and 9 have degree 2, 2 and 5 degree 3.
        assert canonical.vertex_of.tolist() == [1, 9, 2, 5]

    def test_self_loop_raises(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            canonicalize_edge_array([(0, 1), (2, 2)])

    def test_negative_ids_raise(self):
        with pytest.raises(GraphFormatError, match="non-negative"):
            canonicalize_edge_array([(-1, 2)])

    def test_empty_input(self):
        canonical = canonicalize_edge_array([])
        assert canonical.num_edges == 0 and canonical.num_vertices == 0
        assert canonical.edge_list() == []

    def test_matches_python_mirror(self):
        raw = [(7, 3), (3, 7), (1, 3), (7, 1), (10, 1), (2, 10)]
        canonical = canonicalize_edge_array(raw)
        mirror_edges, mirror_labels = canonicalize_edges_python(raw)
        assert canonical.edge_list() == mirror_edges
        assert canonical.vertex_of.tolist() == mirror_labels

    def test_rejects_non_pair_arrays(self):
        # A SNAP-style (E, 3) array with weight columns must error, not be
        # silently reinterpreted as pairs.
        with pytest.raises(GraphFormatError, match=r"shape \(E, 2\)"):
            canonicalize_edge_array(np.array([[0, 1, 5], [1, 2, 7]]))
        with pytest.raises(GraphFormatError, match="integers"):
            canonicalize_edge_array(np.array([[0.5, 1.0]]))

    def test_label_space_triangles_match_graph_degree_order(self):
        # Rank-space output may differ from Graph (repr vs label ties), but
        # the label-space triangle sets must coincide.
        graph = erdos_renyi_gnm(40, 120, seed=2)
        raw = list(graph.edges())
        canonical = canonicalize_edge_array(raw)
        fast = {
            tuple(sorted(canonical.vertex_of[list(t)].tolist()))
            for t in enumerate_triangles_fast(canonical.edges)
        }
        order = graph.degree_order()
        oracle = {
            tuple(sorted(order.to_labels(t))) for t in triangles_in_memory(order.edges)
        }
        assert fast == oracle

    def test_pack_edges_roundtrip_and_dtype(self):
        packed = pack_edges(TRIANGLE)
        assert packed.shape == (3, 2) and packed.dtype == np.int32
        assert pack_edges(packed, dtype="int64").dtype == np.int64

    def test_pack_edges_rejects_negative_ids(self):
        # Regression: negative ids used to flow silently into num_vertices
        # (max() + 1) and corrupt CSR indexing downstream.
        with pytest.raises(GraphFormatError, match="non-negative"):
            pack_edges([(0, 1), (-2, 3)])
        with pytest.raises(GraphFormatError, match="non-negative"):
            pack_edges(np.array([[0, 1], [2, -1]]))

    def test_pack_edges_empty_path_validates_dtype(self):
        # The empty reshape goes through resolve_dtype like every other
        # input: auto stays int32 (zero vertices fit), an explicit int64 is
        # honoured, and an invalid dtype raises instead of silently
        # returning int32.
        assert pack_edges([]).dtype == np.int32
        assert pack_edges([], dtype="int32").dtype == np.int32
        assert pack_edges([], dtype="int64").dtype == np.int64
        with pytest.raises(ValueError, match="dtype"):
            pack_edges([], dtype="bogus")

    def test_resolve_dtype_policy(self):
        assert resolve_dtype("auto", 100) == np.int32
        assert resolve_dtype("auto", 2**31) == np.int64
        assert resolve_dtype("int64", 100) == np.int64
        with pytest.raises(ValueError, match="int32"):
            resolve_dtype("int32", 2**31)
        with pytest.raises(ValueError, match="dtype"):
            resolve_dtype("float32", 100)

    def test_resolve_dtype_int32_boundary_is_exact(self):
        # 2^31 - 1 vertices means the largest id is 2^31 - 2, which int32
        # still holds; one more vertex crosses into int64 (and makes an
        # explicit int32 request an error, not an overflow).
        assert resolve_dtype("auto", 2**31 - 1) == np.int32
        assert resolve_dtype("int32", 2**31 - 1) == np.int32
        assert resolve_dtype("auto", 2**31) == np.int64
        assert resolve_dtype("int64", 2**31 - 1) == np.int64
        with pytest.raises(ValueError, match="int32"):
            resolve_dtype("int32", 2**31)


# ----------------------------------------------------------------------
# CSR adjacency
# ----------------------------------------------------------------------
class TestCSR:
    def test_build_and_forward(self):
        edges = [(0, 2), (0, 3), (1, 2), (2, 3)]
        csr = CSRAdjacency.from_canonical_edges(edges)
        assert csr.num_vertices == 4 and csr.num_edges == 4
        assert csr.forward(0).tolist() == [2, 3]
        assert csr.forward(1).tolist() == [2]
        assert csr.forward(3).tolist() == []
        assert csr.out_degrees().tolist() == [2, 1, 1, 0]

    def test_empty(self):
        csr = CSRAdjacency.from_canonical_edges([])
        assert csr.num_vertices == 0 and csr.num_edges == 0
        assert count_triangles_csr(csr) == 0
        assert list(iter_triangle_chunks_csr(csr)) == []

    def test_rejects_non_canonical(self):
        with pytest.raises(GraphFormatError, match="u < v"):
            CSRAdjacency.from_canonical_edges([(2, 1)])
        with pytest.raises(GraphFormatError, match="sorted"):
            CSRAdjacency.from_canonical_edges([(1, 2), (0, 1)])
        with pytest.raises(GraphFormatError, match="sorted"):
            CSRAdjacency.from_canonical_edges([(0, 1), (0, 1)])


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
class TestKernels:
    def test_single_triangle(self):
        assert count_triangles_fast(TRIANGLE) == 1
        assert enumerate_triangles_fast(TRIANGLE) == [(0, 1, 2)]

    def test_clique_count(self):
        edges = clique(7).degree_order().edges
        assert count_triangles_fast(edges) == 35  # C(7, 3)

    def test_matches_oracle_and_chunking_is_invariant(self):
        edges = ranked_edges(400)
        oracle = triangle_set(edges)
        assert count_triangles_fast(edges) == len(oracle)
        for chunk_size in (1, 3, 64, 10_000):
            assert set(enumerate_triangles_fast(edges, chunk_size=chunk_size)) == oracle

    def test_chunks_are_bounded_and_ordered(self):
        edges = ranked_edges(400)
        chunks = list(iter_triangle_chunks(edges, chunk_size=8))
        flat = [t for chunk in chunks for t in chunk]
        assert set(flat) == triangle_set(edges)
        # deterministic discovery order: lexicographic by lowest edge then
        # closing vertex, consistent across chunk sizes
        assert flat == sorted(flat)
        assert flat == [t for c in iter_triangle_chunks(edges, chunk_size=999) for t in c]

    def test_python_fallback_parity(self):
        edges = ranked_edges(200)
        assert count_triangles_fast(edges, force_python=True) == count_triangles_fast(edges)
        assert set(enumerate_triangles_fast(edges, force_python=True)) == set(
            enumerate_triangles_fast(edges)
        )

    def test_array_input(self):
        packed = pack_edges(ranked_edges(200))
        assert count_triangles_fast(packed) == count_triangles_fast(packed, force_python=True)


# ----------------------------------------------------------------------
# batch colouring
# ----------------------------------------------------------------------
class TestBatchColouring:
    def test_matches_serial_hash(self):
        coloring = RandomColoring(5, seed=9)
        vertices = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5])
        batch = colors_for_vertices(coloring, vertices)
        assert batch.tolist() == [coloring.color_of(int(v)) for v in vertices]

    def test_edge_color_pairs(self):
        coloring = RandomColoring(3, seed=2)
        edges = np.array(ranked_edges(120))
        cu, cv = edge_color_pairs(coloring, edges)
        assert cu.tolist() == [coloring.color_of(int(u)) for u, _ in edges]
        assert cv.tolist() == [coloring.color_of(int(v)) for _, v in edges]

    def test_empty(self):
        coloring = RandomColoring(3, seed=2)
        assert colors_for_vertices(coloring, np.empty(0, dtype=np.int64)).shape == (0,)


# ----------------------------------------------------------------------
# registered algorithms: options, counter dispatch, fallback
# ----------------------------------------------------------------------
class TestVectorAlgorithms:
    def test_options_validation(self):
        with pytest.raises(OptionsError, match="dtype"):
            VectorOptions(dtype="float32").validate()
        with pytest.raises(OptionsError, match="chunk_size"):
            VectorOptions(chunk_size=0).validate()
        with pytest.raises(OptionsError, match="chunk_size"):
            VectorOptions(chunk_size="big").validate()
        with pytest.raises(OptionsError, match="force_python"):
            VectorOptions(force_python=1).validate()
        VectorOptions().validate()

    def test_counter_registered_on_vector_count_only(self):
        assert get_algorithm("vector_count").counter is not None
        assert get_algorithm("vector_enum").counter is None

    def test_count_only_run_dispatches_to_counter(self):
        engine = TriangleEngine.from_canonical_edges(ranked_edges(200))
        result = engine.run("vector_count")
        # The counter path materialises nothing but still reports which
        # backend ran (counters may return a (count, report) pair).
        assert result.triangles is None
        assert result.report is not None and result.report.backend == "numpy"
        assert result.triangle_count == len(triangle_set(engine.edges))
        python_run = engine.run("vector_count", options={"force_python": True})
        assert python_run.report.backend == "python"

    def test_collecting_run_uses_the_runner(self):
        engine = TriangleEngine.from_canonical_edges(ranked_edges(200))
        result = engine.run("vector_count", collect=True)
        assert result.report is not None and result.report.backend == "numpy"
        assert len(result.triangles) == result.triangle_count

    def test_force_python_reported(self):
        engine = TriangleEngine.from_canonical_edges(ranked_edges(120))
        result = engine.run("vector_enum", collect=True, options={"force_python": True})
        assert result.report.backend == "python"

    def test_numpy_absent_fallback(self, monkeypatch):
        import repro.fastpath.algorithms as fp_algorithms
        import repro.fastpath.kernels as fp_kernels

        monkeypatch.setattr(fp_kernels, "HAVE_NUMPY", False)
        monkeypatch.setattr(fp_algorithms, "HAVE_NUMPY", False)
        engine = TriangleEngine.from_canonical_edges(ranked_edges(120))
        result = engine.run("vector_enum", collect=True)
        assert result.report.backend == "python"
        assert {tuple(t) for t in result.triangles} == triangle_set(engine.edges)
        assert engine.count("vector_count") == len(triangle_set(engine.edges))

    def test_require_numpy_error_message(self, monkeypatch):
        import repro.fastpath.arrays as fp_arrays

        monkeypatch.setattr(fp_arrays, "HAVE_NUMPY", False)
        with pytest.raises(FastPathUnavailableError, match="NumPy"):
            fp_arrays.require_numpy("the test feature")

    def test_run_on_edges_entry_point(self):
        from repro.experiments.runner import run_on_edges
        from repro.analysis.model import MachineParams

        edges = ranked_edges(150)
        result = run_on_edges(edges, "vector_count", MachineParams(256, 16))
        assert result.triangle_count == len(triangle_set(edges))
        assert result.io.total == 0


# ----------------------------------------------------------------------
# engine edge cases the fast path must honour
# ----------------------------------------------------------------------
IN_MEMORY_ALGORITHMS = ("in_memory", "vector_count", "vector_enum")


class TestEngineEdgeCases:
    @pytest.mark.parametrize("algorithm", IN_MEMORY_ALGORITHMS)
    def test_empty_graph(self, algorithm):
        engine = TriangleEngine(Graph())
        result = engine.run(algorithm, collect=True)
        assert result.triangle_count == 0 and result.triangles == []

    @pytest.mark.parametrize("algorithm", IN_MEMORY_ALGORITHMS)
    def test_triangle_free_graph(self, algorithm):
        engine = TriangleEngine([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert engine.count(algorithm) == 0

    def test_self_loops_rejected_before_canonicalisation(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            TriangleEngine([(0, 1), (1, 1)])

    @pytest.mark.parametrize("algorithm", IN_MEMORY_ALGORITHMS)
    def test_duplicate_edges_merged_before_canonicalisation(self, algorithm):
        # (a, b), (b, a) and repeats collapse to one edge; one triangle.
        noisy = [("a", "b"), ("b", "a"), ("b", "c"), ("a", "c"), ("a", "b"), ("c", "b")]
        engine = TriangleEngine(noisy)
        assert engine.num_edges == 3
        result = engine.run(algorithm, collect=True)
        assert result.triangle_count == 1
        assert {tuple(sorted(t)) for t in result.triangles} == {("a", "b", "c")}

    @pytest.mark.parametrize("algorithm", IN_MEMORY_ALGORITHMS)
    def test_single_triangle_graph(self, algorithm):
        engine = TriangleEngine.from_canonical_edges(TRIANGLE)
        result = engine.run(algorithm, collect=True)
        assert result.triangles == [(0, 1, 2)]

    def test_stream_over_vector_enum(self):
        edges = ranked_edges(300)
        engine = TriangleEngine.from_canonical_edges(edges)
        oracle = triangle_set(edges)
        batches = list(engine.stream("vector_enum", batch_size=7))
        assert all(len(batch) <= 7 for batch in batches)
        assert {tuple(t) for batch in batches for t in batch} == oracle

    def test_stream_abandoned_early(self):
        edges = ranked_edges(300)
        engine = TriangleEngine.from_canonical_edges(edges)
        stream = engine.stream("vector_enum", batch_size=1)
        next(stream)
        stream.close()  # must not hang or leak the worker

    def test_sink_receives_label_triangles(self):
        sink = CollectingSink()
        engine = TriangleEngine.from_canonical_edges(TRIANGLE)
        engine.run("vector_enum", sink=sink)
        assert sink.triangles == [(0, 1, 2)]


class TestFromEdgeArray:
    """The vectorized ingestion constructor (``TriangleEngine.from_edge_array``)."""

    def test_label_space_parity_with_graph_constructor(self):
        graph = erdos_renyi_gnm(60, 200, seed=4)
        raw = np.array([(u, v) for u, v in graph.edges()])
        fast_engine = TriangleEngine.from_edge_array(raw)
        graph_engine = TriangleEngine(graph)
        for algorithm in ("in_memory", "vector_enum"):
            fast = fast_engine.run(algorithm, collect=True)
            ref = graph_engine.run(algorithm, collect=True)
            assert {tuple(sorted(t)) for t in fast.triangles} == {
                tuple(sorted(t)) for t in ref.triangles
            }

    def test_dedup_orient_and_labels(self):
        engine = TriangleEngine.from_edge_array([(9, 4), (4, 9), (4, 2), (2, 9)])
        assert engine.num_edges == 3 and engine.num_vertices == 3
        result = engine.run("vector_enum", collect=True)
        assert {tuple(sorted(t)) for t in result.triangles} == {(2, 4, 9)}

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            TriangleEngine.from_edge_array([(0, 1), (1, 1)])

    def test_python_fallback_builds_identical_engine(self, monkeypatch):
        import repro.fastpath.arrays as fp_arrays

        raw = [(9, 4), (4, 2), (2, 9), (0, 9), (0, 2)]
        vectorized = TriangleEngine.from_edge_array(raw)
        monkeypatch.setattr(fp_arrays, "HAVE_NUMPY", False)
        fallback = TriangleEngine.from_edge_array(raw)
        assert fallback.edges == vectorized.edges
        assert fallback.order.vertex_of == vectorized.order.vertex_of
