"""Unit tests for the cache-oblivious VM and ExtVector (repro.extmem.oblivious)."""

import pytest

from repro.analysis.model import MachineParams
from repro.exceptions import FileClosedError
from repro.extmem.oblivious import (
    ObliviousVM,
    filter_vector,
    map_vector,
    vector_from_iterable,
)
from repro.extmem.stats import IOStats


def make_vm(memory=64, block=8) -> ObliviousVM:
    return ObliviousVM(MachineParams(memory, block), IOStats())


class TestVectorBasics:
    def test_input_vector_charges_no_io(self):
        vm = make_vm()
        vector = vm.input_vector(range(100))
        assert len(vector) == 100
        assert vm.stats.total == 0

    def test_get_and_set_round_trip(self):
        vm = make_vm()
        vector = vm.input_vector([10, 20, 30])
        assert vector.get(1) == 20
        vector.set(1, 99)
        assert vector.get(1) == 99
        assert vector[2] == 30
        vector[0] = -1
        assert vector[0] == -1

    def test_out_of_range_access_raises(self):
        vm = make_vm()
        vector = vm.input_vector([1, 2, 3])
        with pytest.raises(IndexError):
            vector.get(3)
        with pytest.raises(IndexError):
            vector.set(-1, 0)

    def test_append_and_iterate(self):
        vm = make_vm()
        vector = vm.vector()
        vector.extend(range(25))
        assert list(vector.iterate()) == list(range(25))

    def test_free_releases_space_and_blocks_access(self):
        vm = make_vm()
        vector = vm.input_vector(range(50))
        assert vm.current_words == 50
        vector.free()
        assert vm.current_words == 0
        with pytest.raises(FileClosedError):
            vector.get(0)

    def test_free_is_idempotent(self):
        vm = make_vm()
        vector = vm.input_vector(range(5))
        vector.free()
        vector.free()

    def test_peak_words_tracks_maximum(self):
        vm = make_vm()
        a = vm.input_vector(range(30))
        b = vm.vector()
        b.extend(range(20))
        a.free()
        assert vm.peak_words == 50
        assert vm.current_words == 20

    def test_to_list_does_not_charge(self):
        vm = make_vm()
        vector = vm.input_vector(range(40))
        before = vm.stats.total
        assert vector.to_list() == list(range(40))
        assert vm.stats.total == before


class TestIOAccounting:
    def test_sequential_read_costs_one_miss_per_block(self):
        vm = make_vm(memory=64, block=8)
        vector = vm.input_vector(range(80))
        list(vector.iterate())
        assert vm.stats.reads == 10
        assert vm.stats.writes == 0

    def test_rereading_within_cache_capacity_is_free(self):
        vm = make_vm(memory=64, block=8)  # 8 blocks of cache
        vector = vm.input_vector(range(32))  # 4 blocks
        list(vector.iterate())
        reads_after_first = vm.stats.reads
        list(vector.iterate())
        assert vm.stats.reads == reads_after_first

    def test_append_charges_writes_on_eviction_or_flush(self):
        vm = make_vm(memory=16, block=8)  # cache of 2 blocks
        out = vm.vector()
        out.extend(range(40))  # 5 blocks, so at least 3 must have been evicted dirty
        assert vm.stats.writes >= 3
        vm.flush()
        assert vm.stats.writes == 5

    def test_append_never_charges_reads(self):
        vm = make_vm(memory=16, block=8)
        out = vm.vector()
        out.extend(range(100))
        assert vm.stats.reads == 0

    def test_random_access_thrashes_small_cache(self):
        vm = make_vm(memory=16, block=8)  # 2 blocks of cache
        vector = vm.input_vector(range(64))  # 8 blocks
        for index in range(0, 64, 8):  # one access per block, twice
            vector.get(index)
        for index in range(0, 64, 8):
            vector.get(index)
        assert vm.stats.reads == 16

    def test_operations_counted_per_access(self):
        vm = make_vm()
        vector = vm.input_vector(range(10))
        list(vector.iterate())
        assert vm.stats.operations == 10


class TestSlices:
    def test_slice_reads_relative_indices(self):
        vm = make_vm()
        vector = vm.input_vector(range(100))
        view = vector.slice(10, 20)
        assert len(view) == 10
        assert view.get(0) == 10
        assert view[9] == 19

    def test_slice_writes_through(self):
        vm = make_vm()
        vector = vm.input_vector(range(10))
        view = vector.slice(5, 10)
        view.set(0, 500)
        assert vector.get(5) == 500

    def test_nested_slices(self):
        vm = make_vm()
        vector = vm.input_vector(range(100))
        inner = vector.slice(20, 80).slice(10, 20)
        assert list(inner.iterate()) == list(range(30, 40))

    def test_slice_out_of_range(self):
        vm = make_vm()
        vector = vm.input_vector(range(10))
        view = vector.slice(2, 6)
        with pytest.raises(IndexError):
            view.get(4)


class TestHelpers:
    def test_vector_from_iterable_charges_writes(self):
        vm = make_vm(memory=16, block=8)
        vector = vector_from_iterable(vm, range(24))
        vm.flush()
        assert list(vector.iterate()) == list(range(24))
        assert vm.stats.writes == 3

    def test_map_vector(self):
        vm = make_vm()
        source = vm.input_vector(range(10))
        doubled = map_vector(vm, source, lambda x: 2 * x)
        assert doubled.to_list() == [2 * x for x in range(10)]

    def test_filter_vector(self):
        vm = make_vm()
        source = vm.input_vector(range(20))
        evens = filter_vector(vm, source, lambda x: x % 2 == 0)
        assert evens.to_list() == list(range(0, 20, 2))
