"""Tests for vertex colourings (repro.hashing.coloring)."""

import pytest

from repro.hashing.coloring import (
    ConstantColoring,
    RandomColoring,
    RefinedColoring,
    TableColoring,
    random_bit_function,
)


class TestConstantColoring:
    def test_everything_is_colour_zero(self):
        coloring = ConstantColoring()
        assert coloring.num_colors == 1
        assert all(coloring.color_of(v) == 0 for v in range(100))


class TestRandomColoring:
    def test_colors_in_range(self):
        coloring = RandomColoring(5, seed=0)
        assert coloring.num_colors == 5
        assert all(0 <= coloring.color_of(v) < 5 for v in range(500))

    def test_deterministic_given_seed(self):
        a = RandomColoring(8, seed=42)
        b = RandomColoring(8, seed=42)
        assert [a.color_of(v) for v in range(100)] == [b.color_of(v) for v in range(100)]

    def test_needs_at_least_one_color(self):
        with pytest.raises(ValueError):
            RandomColoring(0)


class TestTableColoring:
    def test_lookup_and_default(self):
        coloring = TableColoring({1: 2, 5: 0}, num_colors=3)
        assert coloring.color_of(1) == 2
        assert coloring.color_of(5) == 0
        assert coloring.color_of(999) == 0  # missing vertices default to 0

    def test_out_of_range_colors_rejected(self):
        with pytest.raises(ValueError):
            TableColoring({1: 3}, num_colors=3)
        with pytest.raises(ValueError):
            TableColoring({1: -1}, num_colors=3)
        with pytest.raises(ValueError):
            TableColoring({}, num_colors=0)


class TestRefinedColoring:
    def test_doubles_the_number_of_colors(self):
        parent = TableColoring({0: 0, 1: 1, 2: 2}, num_colors=3)
        refined = RefinedColoring(parent, bit=lambda v: v % 2)
        assert refined.num_colors == 6

    def test_refinement_formula(self):
        parent = TableColoring({0: 1, 1: 2}, num_colors=4)
        refined = RefinedColoring(parent, bit=lambda v: 1 if v == 0 else 0)
        assert refined.color_of(0) == 2 * 1 + 1
        assert refined.color_of(1) == 2 * 2 + 0

    def test_refinement_preserves_parent_classes(self):
        """Vertices with different parent colours never merge after refinement."""
        parent = RandomColoring(4, seed=1)
        refined = RefinedColoring(parent, bit=random_bit_function(seed=2))
        for v in range(200):
            for w in range(200):
                if parent.color_of(v) != parent.color_of(w):
                    assert refined.color_of(v) != refined.color_of(w)

    def test_non_binary_bit_function_rejected(self):
        refined = RefinedColoring(ConstantColoring(), bit=lambda v: 2)
        with pytest.raises(ValueError):
            refined.color_of(0)

    def test_random_bit_function_is_binary(self):
        bit = random_bit_function(seed=0)
        assert all(bit(v) in (0, 1) for v in range(100))

    def test_chained_refinement_gives_power_of_two_colors(self):
        coloring = ConstantColoring()
        for level in range(4):
            coloring = RefinedColoring(coloring, bit=random_bit_function(seed=level))
        assert coloring.num_colors == 16
        assert all(0 <= coloring.color_of(v) < 16 for v in range(100))
