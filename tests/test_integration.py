"""Cross-module integration tests: the paper's claims at test scale.

These tests run the whole stack (generators -> canonical form -> simulated
machine -> algorithm -> analysis bounds) and assert the *shape* claims the
experiments measure at larger scale, with generous constants so the suite
stays robust and fast.
"""

import math

from repro.analysis.bounds import (
    cache_aware_io,
    hu_tao_chung_io,
    lower_bound_io,
    sort_io,
)
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.core.emit import DedupCheckingSink
from repro.experiments.runner import run_on_edges
from repro.experiments.workloads import clique_workload, sparse_random
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import erdos_renyi_gnm


class TestEndToEndScaling:
    def test_cache_aware_beats_hu_tao_chung_when_e_much_larger_than_m(self):
        """The paper's headline: a sqrt(E/M) improvement once E >> M."""
        params = MachineParams(memory_words=64, block_words=8)
        workload = sparse_random(4096)
        ours = run_on_edges(workload.edges, "cache_aware", params, seed=0)
        baseline = run_on_edges(workload.edges, "hu_tao_chung", params, seed=0)
        assert ours.total_ios < baseline.total_ios
        assert ours.triangle_count == baseline.triangle_count

    def test_hu_tao_chung_wins_when_edges_nearly_fit_in_memory(self):
        """The crossover the paper acknowledges: for E close to M the simpler
        algorithm's constants win (a pipelined nested loop join 'does a good
        job when the edge set almost fits in memory')."""
        params = MachineParams(memory_words=512, block_words=16)
        workload = sparse_random(600)
        ours = run_on_edges(workload.edges, "cache_aware", params, seed=0)
        baseline = run_on_edges(workload.edges, "hu_tao_chung", params, seed=0)
        assert baseline.total_ios < ours.total_ios

    def test_measured_growth_exponent_close_to_three_halves(self):
        params = MachineParams(memory_words=128, block_words=8)
        sizes = [512, 1024, 2048, 4096]
        ios = []
        for size in sizes:
            workload = sparse_random(size)
            ios.append(run_on_edges(workload.edges, "cache_aware", params, seed=1).total_ios)
        fit = fit_power_law(sizes, ios)
        assert 1.25 <= fit.exponent <= 1.85

    def test_measured_io_between_lower_bound_and_upper_bound_constant(self):
        """On a clique the measured I/Os sit between the Theorem 3 lower bound
        and a generous constant times the Theorem 4 upper-bound formula."""
        params = MachineParams(memory_words=128, block_words=16)
        workload = clique_workload(32)
        result = run_on_edges(workload.edges, "cache_aware", params, seed=2)
        triangles = math.comb(32, 3)
        lower = lower_bound_io(triangles, params)
        upper = cache_aware_io(workload.num_edges, params)
        assert result.total_ios >= lower
        assert result.total_ios <= 60 * upper

    def test_all_external_algorithms_never_beat_the_lower_bound(self):
        params = MachineParams(memory_words=64, block_words=8)
        workload = clique_workload(20)
        triangles = math.comb(20, 3)
        lower = lower_bound_io(triangles, params)
        for algorithm in ("cache_aware", "deterministic", "hu_tao_chung", "dementiev", "bnlj"):
            result = run_on_edges(workload.edges, algorithm, params, seed=0)
            assert result.triangle_count == triangles
            assert result.total_ios >= lower

    def test_predicted_ordering_matches_measured_ordering_at_scale(self):
        """At E/M = 64 the predicted ranking ours < htc < bnlj is also the
        measured ranking."""
        params = MachineParams(memory_words=64, block_words=8)
        workload = sparse_random(4096)
        measured = {}
        for algorithm in ("cache_aware", "hu_tao_chung"):
            measured[algorithm] = run_on_edges(workload.edges, algorithm, params, seed=3).total_ios
        assert cache_aware_io(4096, params) < hu_tao_chung_io(4096, params)
        assert measured["cache_aware"] < measured["hu_tao_chung"]


class TestResourceContracts:
    def test_disk_usage_linear_for_all_algorithms(self):
        params = MachineParams(memory_words=64, block_words=8)
        workload = sparse_random(1500)
        for algorithm in ("cache_aware", "deterministic", "hu_tao_chung", "dementiev"):
            result = run_on_edges(workload.edges, algorithm, params, seed=0)
            limit = 12 * workload.num_edges
            if algorithm == "dementiev":
                # Its wedge file is Theta(E^{3/2}) by design -- that is exactly
                # the weakness the paper points out.
                limit = 12 * int(workload.num_edges**1.5)
            assert result.disk_peak_words <= limit

    def test_memory_lease_discipline_is_enforced(self):
        """Algorithms must run within M: a run on a tiny machine still succeeds
        (batch sizes shrink) rather than silently over-subscribing memory."""
        params = MachineParams(memory_words=16, block_words=8)
        workload = sparse_random(400)
        result = run_on_edges(workload.edges, "hu_tao_chung", params, seed=0)
        oracle = run_on_edges(workload.edges, "cache_aware", MachineParams(512, 16), seed=0)
        assert result.triangle_count == oracle.triangle_count

    def test_lemma1_cost_tracks_sort_cost_as_e_grows(self):
        """Lemma 1 is O(sort(E)): the measured/sort(E) ratio stays in a band."""
        from repro.core.lemma1 import triangles_through_vertex

        params = MachineParams(memory_words=128, block_words=16)
        ratios = []
        for num_edges in (1000, 2000, 4000):
            graph = erdos_renyi_gnm(num_edges // 3, num_edges, seed=1)
            edges = graph.degree_order().edges
            machine = Machine(params, IOStats())
            edge_file = machine.file_from_records(edges)
            triangles_through_vertex(machine, [edge_file], num_edges // 6, DedupCheckingSink())
            ratios.append(machine.stats.total / sort_io(num_edges, params))
        assert max(ratios) / min(ratios) < 2.5

    def test_operations_grow_subquadratically(self):
        params = MachineParams(memory_words=128, block_words=8)
        small = run_on_edges(sparse_random(1024).edges, "cache_aware", params, seed=0)
        large = run_on_edges(sparse_random(4096).edges, "cache_aware", params, seed=0)
        growth = large.operations / small.operations
        assert growth < 16  # quadratic would give ~16; expect ~8 (E^1.5)
        assert growth < 10
