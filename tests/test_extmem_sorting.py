"""Unit and property tests for the external merge sort (repro.extmem.sorting)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import sort_io
from repro.analysis.model import MachineParams
from repro.extmem.machine import Machine
from repro.extmem.sorting import merge_fan_in, merge_sorted_scan
from repro.extmem.stats import IOStats


def make_machine(memory=64, block=8) -> Machine:
    return Machine(MachineParams(memory, block), IOStats())


class TestCorrectness:
    def test_sorts_small_input_in_memory(self):
        machine = make_machine(memory=64)
        file = machine.file_from_records([5, 3, 9, 1])
        result = machine.sort(file)
        assert list(machine.scan(result)) == [1, 3, 5, 9]

    def test_sorts_input_larger_than_memory(self):
        machine = make_machine(memory=64, block=8)
        data = [random.Random(0).randrange(10_000) for _ in range(1000)]
        file = machine.file_from_records(data)
        result = machine.sort(file)
        assert list(machine.scan(result)) == sorted(data)

    def test_sort_with_key(self):
        machine = make_machine()
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        file = machine.file_from_records(pairs)
        result = machine.sort(file, key=lambda record: record[0])
        assert list(machine.scan(result)) == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_is_stable_for_equal_keys(self):
        machine = make_machine(memory=64, block=8)
        pairs = [(i % 3, i) for i in range(300)]
        file = machine.file_from_records(pairs)
        result = machine.sort(file, key=lambda record: record[0])
        sorted_pairs = list(machine.scan(result))
        for key in range(3):
            group = [second for first, second in sorted_pairs if first == key]
            assert group == sorted(group)

    def test_sort_empty_file(self):
        machine = make_machine()
        file = machine.empty_file()
        result = machine.sort(file)
        assert len(result) == 0

    def test_sort_respects_requested_name(self):
        machine = make_machine(memory=16, block=4)
        file = machine.file_from_records(list(range(100, 0, -1)))
        result = machine.sort(file, name="sorted-output")
        assert result.name == "sorted-output"
        assert list(machine.scan(result)) == list(range(1, 101))

    def test_intermediate_runs_are_deleted(self):
        machine = make_machine(memory=16, block=4)
        file = machine.file_from_records(list(range(200, 0, -1)))
        result = machine.sort(file)
        live = set(machine.disk.files)
        assert result.name in live
        # Only the input and the output should remain on disk.
        assert len(live) == 2

    def test_sort_slice(self):
        machine = make_machine(memory=16, block=4)
        file = machine.file_from_records([9, 8, 7, 6, 5, 4, 3, 2, 1, 0])
        result = machine.sort(file.slice(2, 8))
        assert list(machine.scan(result)) == [2, 3, 4, 5, 6, 7]


class TestIOCounts:
    def test_in_memory_sort_costs_one_read_and_write_pass(self):
        machine = make_machine(memory=64, block=8)
        file = machine.file_from_records(list(range(64, 0, -1)))
        machine.sort(file)
        assert machine.stats.reads == 8
        assert machine.stats.writes == 8

    def test_external_sort_io_close_to_model(self):
        memory, block = 64, 8
        n = 4096
        machine = make_machine(memory=memory, block=block)
        data = [random.Random(1).randrange(10**6) for _ in range(n)]
        file = machine.file_from_records(data)
        machine.sort(file)
        predicted = sort_io(n, MachineParams(memory, block))
        # The operational sort should be within a small constant of the
        # closed-form sort(n) expression (it pays reads+writes per pass).
        assert machine.stats.total <= 6 * predicted
        assert machine.stats.total >= predicted

    def test_merge_fan_in_bounds(self):
        assert merge_fan_in(64, 8) == 7
        assert merge_fan_in(16, 8) == 2
        assert merge_fan_in(8, 8) == 2


class TestMergeSortedScan:
    def test_merges_sorted_streams(self):
        machine = make_machine(block=4)
        a = machine.file_from_records([1, 4, 7])
        b = machine.file_from_records([2, 3, 9])
        merged = list(merge_sorted_scan(machine, [a, b]))
        assert merged == [1, 2, 3, 4, 7, 9]

    def test_merge_with_key(self):
        machine = make_machine(block=4)
        a = machine.file_from_records([(1, "x"), (5, "x")])
        b = machine.file_from_records([(2, "y")])
        merged = list(merge_sorted_scan(machine, [a, b], key=lambda r: r[0]))
        assert [value for value, _ in merged] == [1, 2, 5]


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300),
    memory_blocks=st.integers(min_value=2, max_value=8),
    block=st.sampled_from([2, 4, 8]),
)
def test_property_external_sort_matches_sorted(data, memory_blocks, block):
    """Property: the external sort agrees with Python's sorted() for any input."""
    machine = Machine(MachineParams(memory_blocks * block, block), IOStats())
    file = machine.file_from_records(data)
    result = machine.sort(file)
    assert list(machine.scan(result)) == sorted(data)
