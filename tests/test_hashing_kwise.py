"""Tests for the k-wise independent hash family (repro.hashing.kwise)."""

import itertools
from collections import Counter

import pytest

from repro.hashing.kwise import KWiseIndependentHash


class TestBasics:
    def test_values_fall_in_range(self):
        hash_function = KWiseIndependentHash(7, seed=0)
        for value in range(1000):
            assert 0 <= hash_function(value) < 7

    def test_deterministic_given_seed(self):
        a = KWiseIndependentHash(16, seed=123)
        b = KWiseIndependentHash(16, seed=123)
        assert [a(v) for v in range(100)] == [b(v) for v in range(100)]

    def test_different_seeds_differ(self):
        a = KWiseIndependentHash(1 << 20, seed=1)
        b = KWiseIndependentHash(1 << 20, seed=2)
        assert [a(v) for v in range(50)] != [b(v) for v in range(50)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KWiseIndependentHash(0)
        with pytest.raises(ValueError):
            KWiseIndependentHash(4, independence=0)

    def test_bit_requires_binary_range(self):
        with pytest.raises(ValueError):
            KWiseIndependentHash(4, seed=0).bit(3)
        bit_function = KWiseIndependentHash(2, seed=0)
        assert bit_function.bit(17) in (0, 1)

    def test_range_one_is_constant_zero(self):
        constant = KWiseIndependentHash(1, seed=5)
        assert all(constant(v) == 0 for v in range(20))


class TestDistribution:
    def test_roughly_uniform_over_colours(self):
        """With 4 colours and 4000 keys, each colour should get 1000 +- 25%."""
        hash_function = KWiseIndependentHash(4, seed=7)
        counts = Counter(hash_function(v) for v in range(4000))
        assert set(counts) <= {0, 1, 2, 3}
        for colour in range(4):
            assert 700 <= counts[colour] <= 1300

    def test_pair_collision_rate_close_to_one_over_c(self):
        """Pairwise collision probability should be about 1/c (here 1/8)."""
        c = 8
        hash_function = KWiseIndependentHash(c, seed=11)
        values = [hash_function(v) for v in range(300)]
        pairs = list(itertools.combinations(values, 2))
        collisions = sum(1 for a, b in pairs if a == b)
        rate = collisions / len(pairs)
        assert 0.5 / c <= rate <= 2.0 / c

    def test_bits_are_balanced(self):
        bit_function = KWiseIndependentHash(2, seed=3)
        ones = sum(bit_function(v) for v in range(2000))
        assert 800 <= ones <= 1200

    def test_average_over_seeds_is_unbiased(self):
        """Averaging over many draws of the family, each key is uniform."""
        c = 4
        counts = Counter()
        for seed in range(200):
            hash_function = KWiseIndependentHash(c, seed=seed)
            counts[hash_function(12345)] += 1
        for colour in range(c):
            assert 25 <= counts[colour] <= 75
