"""Tests for the declarative algorithm registry (repro.core.registry)."""

import pytest

from repro.core.algorithms import (
    CacheAwareOptions,
    CacheObliviousOptions,
    DeterministicOptions,
)
from repro.core.registry import (
    AlgorithmOptions,
    NoOptions,
    algorithm_names,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.exceptions import AlgorithmError, OptionsError, RegistrationError

#: The seven paper/baseline algorithms plus the vectorized in-memory
#: registrations of :mod:`repro.fastpath.algorithms` and the out-of-core
#: pair of :mod:`repro.fastpath.oocore`.
BUILTINS = [
    "cache_aware",
    "deterministic",
    "cache_oblivious",
    "hu_tao_chung",
    "dementiev",
    "bnlj",
    "in_memory",
    "vector_count",
    "vector_enum",
    "oocore_count",
    "oocore_enum",
]


class TestBuiltins:
    def test_all_builtins_registered_in_order(self):
        assert algorithm_names() == BUILTINS

    def test_substrate_kinds(self):
        substrates = {spec.name: spec.substrate for spec in algorithm_specs()}
        assert substrates["cache_oblivious"] == "oblivious-vm"
        assert substrates["in_memory"] == "in-memory"
        for name in ("cache_aware", "deterministic", "hu_tao_chung", "dementiev", "bnlj"):
            assert substrates[name] == "machine"

    def test_seed_acceptance_declared(self):
        accepts = {spec.name: spec.accepts_seed for spec in algorithm_specs()}
        assert accepts["cache_aware"] and accepts["cache_oblivious"]
        assert not accepts["deterministic"]
        assert not accepts["bnlj"]

    def test_specs_carry_paper_metadata(self):
        spec = get_algorithm("cache_aware")
        assert spec.section.startswith("2")
        assert "E^{3/2}" in spec.io_bound
        assert spec.options_type is CacheAwareOptions

    def test_unknown_algorithm_raises(self):
        with pytest.raises(AlgorithmError, match="quantum"):
            get_algorithm("quantum")


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        @register_algorithm(
            "_test_dup",
            summary="t",
            section="-",
            io_bound="-",
            substrate="in-memory",
            accepts_seed=False,
        )
        def first(context, sink, options):
            return None

        try:
            with pytest.raises(RegistrationError, match="already registered"):
                register_algorithm(
                    "_test_dup",
                    summary="t",
                    section="-",
                    io_bound="-",
                    substrate="in-memory",
                    accepts_seed=False,
                )(lambda context, sink, options: None)
        finally:
            unregister_algorithm("_test_dup")

    def test_unknown_substrate_rejected(self):
        with pytest.raises(RegistrationError, match="substrate"):
            register_algorithm(
                "_test_substrate",
                summary="t",
                section="-",
                io_bound="-",
                substrate="quantum-foam",
                accepts_seed=False,
            )

    def test_options_must_be_algorithm_options_subclass(self):
        with pytest.raises(RegistrationError, match="AlgorithmOptions"):
            register_algorithm(
                "_test_options",
                summary="t",
                section="-",
                io_bound="-",
                substrate="in-memory",
                accepts_seed=False,
                options=dict,
            )

    def test_registered_algorithm_visible_and_removable(self):
        @register_algorithm(
            "_test_visible",
            summary="t",
            section="-",
            io_bound="-",
            substrate="in-memory",
            accepts_seed=False,
        )
        def runner(context, sink, options):
            return None

        try:
            assert "_test_visible" in algorithm_names()
            assert get_algorithm("_test_visible").runner is runner
        finally:
            unregister_algorithm("_test_visible")
        assert "_test_visible" not in algorithm_names()


class TestFreshInterpreterBehaviour:
    """The registry populates lazily; these paths must work as the very
    first registry touch of a process (exercised in a subprocess)."""

    def _run(self, code):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run([sys.executable, "-c", code], capture_output=True, text=True, env=env)

    def test_algorithms_view_get_works_before_any_refresh(self):
        completed = self._run(
            "from repro.core.api import ALGORITHMS\n"
            "assert ALGORITHMS.get('cache_aware') is not None\n"
            "assert len(ALGORITHMS.values()) == 11\n"
        )
        assert completed.returncode == 0, completed.stderr

    def test_plugin_cannot_claim_builtin_name_on_empty_registry(self):
        completed = self._run(
            "from repro.core.registry import register_algorithm, get_algorithm\n"
            "from repro.exceptions import RegistrationError\n"
            "try:\n"
            "    register_algorithm('cache_aware', summary='t', section='-',\n"
            "                       io_bound='-', substrate='in-memory',\n"
            "                       accepts_seed=False)(lambda c, s, o: None)\n"
            "except RegistrationError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('duplicate builtin registration was allowed')\n"
            "assert get_algorithm('cache_aware').substrate == 'machine'\n"
        )
        assert completed.returncode == 0, completed.stderr


class TestTypedOptions:
    def test_unknown_option_rejected(self):
        with pytest.raises(OptionsError, match="nonsense"):
            CacheAwareOptions.from_mapping({"nonsense": 1})

    def test_wrong_type_rejected(self):
        with pytest.raises(OptionsError, match="num_colors"):
            CacheAwareOptions.from_mapping({"num_colors": "three"})
        with pytest.raises(OptionsError, match="num_colors"):
            CacheAwareOptions.from_mapping({"num_colors": True})

    def test_out_of_range_rejected(self):
        with pytest.raises(OptionsError, match=">= 1"):
            CacheAwareOptions.from_mapping({"num_colors": 0})
        with pytest.raises(OptionsError, match="max_family_size"):
            DeterministicOptions.from_mapping({"max_family_size": 0})

    def test_cache_oblivious_options(self):
        options = CacheObliviousOptions.from_mapping({"max_depth": 0})
        assert options.max_depth == 0
        with pytest.raises(OptionsError, match="size_recorder"):
            CacheObliviousOptions.from_mapping({"size_recorder": 42})

    def test_valid_options_round_trip(self):
        options = DeterministicOptions.from_mapping({"num_colors": 4, "max_family_size": 64})
        assert options.to_mapping() == {"num_colors": 4, "max_family_size": 64}

    def test_resolve_accepts_dataclass_instance(self):
        spec = get_algorithm("cache_aware")
        options = CacheAwareOptions(num_colors=2)
        assert spec.resolve_options(options, None) is options

    def test_resolve_rejects_wrong_dataclass(self):
        spec = get_algorithm("cache_aware")
        with pytest.raises(OptionsError, match="CacheAwareOptions"):
            spec.resolve_options(DeterministicOptions(), None)

    def test_resolve_rejects_mixed_forms(self):
        spec = get_algorithm("cache_aware")
        with pytest.raises(OptionsError, match="not both"):
            spec.resolve_options(CacheAwareOptions(), {"num_colors": 2})
        with pytest.raises(OptionsError, match="both in mapping"):
            spec.resolve_options({"num_colors": 2}, {"num_colors": 3})

    def test_no_options_schema_is_empty(self):
        assert get_algorithm("bnlj").options_schema() == []
        assert isinstance(NoOptions(), AlgorithmOptions)

    def test_options_schema_rows(self):
        schema = get_algorithm("deterministic").options_schema()
        names = [row["name"] for row in schema]
        assert names == ["num_colors", "max_family_size"]
        defaults = {row["name"]: row["default"] for row in schema}
        assert defaults == {"num_colors": None, "max_family_size": 256}
