"""Tests for the graph representation and degree ordering (repro.graph.graph)."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.validation import check_canonical_edges


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_add_edges_and_vertices(self):
        graph = Graph(edges=[(1, 2), (2, 3)], vertices=[7])
        assert graph.num_vertices == 4
        assert graph.num_edges == 2
        assert graph.has_edge(2, 1)
        assert graph.degree(2) == 2
        assert graph.degree(7) == 0

    def test_self_loops_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(edges=[(1, 1)])

    def test_parallel_edges_merge(self):
        graph = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1

    def test_edges_reported_once(self):
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edge_set = {frozenset(edge) for edge in graph.edges()}
        assert edge_set == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}

    def test_neighbors_is_a_copy(self):
        graph = Graph(edges=[(1, 2)])
        neighbours = graph.neighbors(1)
        neighbours.add(99)
        assert graph.neighbors(1) == {2}

    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_string_labels_supported(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        assert graph.degree("b") == 2


class TestDegreeOrder:
    def test_ranks_sorted_by_degree(self):
        # star: centre has degree 3, leaves degree 1
        graph = Graph(edges=[("hub", "a"), ("hub", "b"), ("hub", "c")])
        order = graph.degree_order()
        assert order.vertex_of[-1] == "hub"
        assert order.rank_of["hub"] == 3

    def test_canonical_edges_are_valid(self):
        graph = Graph(edges=[(10, 20), (20, 30), (10, 30), (30, 40)])
        order = graph.degree_order()
        check_canonical_edges(order.edges)
        assert order.num_edges == 4

    def test_rank_mapping_is_a_bijection(self):
        graph = Graph(edges=[(i, i + 1) for i in range(10)])
        order = graph.degree_order()
        assert sorted(order.rank_of.values()) == list(range(order.num_vertices))
        for vertex, rank in order.rank_of.items():
            assert order.vertex_of[rank] == vertex

    def test_isolated_vertices_get_lowest_ranks(self):
        graph = Graph(edges=[(1, 2)], vertices=[99])
        order = graph.degree_order()
        assert order.rank_of[99] == 0

    def test_ordering_is_consistent_across_calls(self):
        graph = Graph(edges=[(1, 2), (3, 4), (1, 3)])
        first = graph.degree_order()
        second = graph.degree_order()
        assert first.vertex_of == second.vertex_of
        assert first.edges == second.edges

    def test_degree_helper_matches_graph(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4), (2, 3)])
        order = graph.degree_order()
        for vertex in graph.vertices():
            assert order.degree(order.rank_of[vertex]) == graph.degree(vertex)

    def test_to_labels_round_trip(self):
        graph = Graph(edges=[("x", "y"), ("y", "z"), ("x", "z")])
        order = graph.degree_order()
        ranked = tuple(sorted(order.rank_of[v] for v in ("x", "y", "z")))
        assert set(order.to_labels(ranked)) == {"x", "y", "z"}

    def test_triangle_count_preserved_by_ranking(self):
        from repro.core.baselines.in_memory import count_triangles_in_memory

        graph = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)])
        order = graph.degree_order()
        assert count_triangles_in_memory(order.edges) == 2
