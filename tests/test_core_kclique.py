"""Tests for the k-clique extension (repro.core.kclique)."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.kclique import (
    CollectingCliqueSink,
    CountingCliqueSink,
    DedupCheckingCliqueSink,
    cache_aware_kclique,
    cliques_in_memory,
    count_cliques_in_memory,
)
from repro.exceptions import AlgorithmError
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import (
    barabasi_albert,
    clique,
    complete_bipartite,
    complete_tripartite,
    erdos_renyi_gnm,
)
from repro.graph.graph import Graph
from repro.graph.validation import normalize_edges


def make_machine(memory=128, block=8):
    return Machine(MachineParams(memory, block), IOStats())


class TestInMemoryOracle:
    def test_cliques_of_complete_graph(self):
        edges = clique(8).degree_order().edges
        for k in range(1, 9):
            assert count_cliques_in_memory(edges, k) == math.comb(8, k)

    def test_k3_matches_triangle_oracle(self):
        edges = erdos_renyi_gnm(40, 160, seed=1).degree_order().edges
        assert set(cliques_in_memory(edges, 3)) == set(triangles_in_memory(edges))

    def test_bipartite_has_no_cliques_beyond_edges(self):
        edges = complete_bipartite(5, 6).degree_order().edges
        assert count_cliques_in_memory(edges, 3) == 0
        assert count_cliques_in_memory(edges, 4) == 0
        assert count_cliques_in_memory(edges, 2) == 30

    def test_tripartite_has_triangles_but_no_4_cliques(self):
        edges = complete_tripartite(3, 3, 3).degree_order().edges
        assert count_cliques_in_memory(edges, 3) == 27
        assert count_cliques_in_memory(edges, 4) == 0

    def test_singletons_and_edges(self):
        edges = [(0, 1), (1, 2)]
        assert count_cliques_in_memory(edges, 1) == 3
        assert count_cliques_in_memory(edges, 2) == 2

    def test_each_clique_reported_once_and_sorted(self):
        edges = clique(7).degree_order().edges
        cliques = cliques_in_memory(edges, 4)
        assert len(cliques) == len(set(cliques)) == math.comb(7, 4)
        assert all(list(c) == sorted(c) for c in cliques)

    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            cliques_in_memory([(0, 1)], 0)

    def test_sink_receives_cliques(self):
        sink = CollectingCliqueSink()
        cliques_in_memory(clique(5).degree_order().edges, 4, sink=sink)
        assert sink.count == 5
        assert all(len(c) == 4 for c in sink.as_set())


class TestSinks:
    def test_counting_sink(self):
        sink = CountingCliqueSink()
        sink.emit(1, 2, 3, 4)
        assert sink.count == 1

    def test_dedup_sink_rejects_duplicates(self):
        sink = DedupCheckingCliqueSink()
        sink.emit(1, 2, 3, 4)
        with pytest.raises(AlgorithmError):
            sink.emit(4, 3, 2, 1)

    def test_dedup_sink_rejects_degenerate(self):
        sink = DedupCheckingCliqueSink()
        with pytest.raises(AlgorithmError):
            sink.emit(1, 1, 2)


class TestExternalAlgorithm:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_oracle_on_random_graph(self, k):
        edges = erdos_renyi_gnm(40, 220, seed=k).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        report = cache_aware_kclique(machine, edge_file, k, sink, seed=7)
        assert sink.as_set() == set(cliques_in_memory(edges, k))
        assert report.cliques_emitted == sink.count
        assert report.clique_size == k

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_matches_oracle_on_clique(self, k):
        edges = clique(10).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        cache_aware_kclique(machine, edge_file, k, sink, seed=1)
        assert sink.count == math.comb(10, k)

    def test_matches_oracle_on_skewed_graph(self):
        edges = barabasi_albert(100, 4, seed=3).degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        cache_aware_kclique(machine, edge_file, 4, sink, seed=2)
        assert sink.as_set() == set(cliques_in_memory(edges, 4))

    def test_k3_agrees_with_triangle_algorithms(self):
        edges = erdos_renyi_gnm(60, 260, seed=9).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        cache_aware_kclique(machine, edge_file, 3, sink, seed=0)
        assert sink.as_set() == set(triangles_in_memory(edges))

    def test_no_4_cliques_in_tripartite(self):
        edges = complete_tripartite(5, 5, 5).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        report = cache_aware_kclique(machine, edge_file, 4, sink, seed=0)
        assert report.cliques_emitted == 0

    def test_too_small_k_rejected(self):
        machine = make_machine()
        edge_file = machine.file_from_records([(0, 1)])
        with pytest.raises(AlgorithmError):
            cache_aware_kclique(machine, edge_file, 2, CountingCliqueSink())

    def test_tiny_input_short_circuits(self):
        machine = make_machine()
        edge_file = machine.file_from_records([(0, 1), (1, 2)])
        report = cache_aware_kclique(machine, edge_file, 4, CountingCliqueSink())
        assert report.cliques_emitted == 0

    def test_oversized_subproblems_are_refined_not_overloaded(self):
        """With a tiny memory every colour class exceeds the budget, forcing
        the refinement path; the answer must still be exact and memory never
        over-subscribed (the machine would raise otherwise)."""
        edges = erdos_renyi_gnm(60, 300, seed=4).degree_order().edges
        machine = make_machine(memory=32, block=8)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingCliqueSink()
        report = cache_aware_kclique(machine, edge_file, 3, sink, seed=5)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.subproblems_refined > 0

    def test_io_scales_better_than_naive_for_k4(self):
        """For k = 4 the bound is E^2/(M B); doubling E should grow the I/Os
        by far less than the E^4 factor (16x) of a naive 4-way join."""
        params = MachineParams(128, 16)
        totals = []
        for num_edges in (512, 1024):
            graph = erdos_renyi_gnm(num_edges // 3, num_edges, seed=11)
            machine = Machine(params, IOStats())
            edge_file = machine.file_from_records(graph.degree_order().edges)
            cache_aware_kclique(machine, edge_file, 4, CountingCliqueSink(), seed=1)
            totals.append(machine.stats.total)
        growth = totals[1] / totals[0]
        assert growth < 8


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    raw_edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
        max_size=60,
    ),
    k=st.integers(min_value=3, max_value=5),
    seed=st.integers(0, 1000),
)
def test_property_external_kclique_matches_oracle(raw_edges, k, seed):
    """Property: the external algorithm agrees with the in-memory oracle for
    any small graph, any clique size and any seed."""
    edges = Graph(edges=normalize_edges(raw_edges)).degree_order().edges
    machine = Machine(MachineParams(64, 8), IOStats())
    edge_file = machine.file_from_records(edges)
    sink = DedupCheckingCliqueSink()
    cache_aware_kclique(machine, edge_file, k, sink, seed=seed)
    assert sink.as_set() == set(cliques_in_memory(edges, k))
