"""Tests for the experiment orchestration layer.

Covers the pieces the parallel runner is built from: spec expansion
determinism, the content-addressed artifact store (round-trip, resume,
corruption handling), serial/parallel result equivalence, the new workload
generators (triangle counts cross-checked against the in-memory oracle),
and the ``run_all`` failure paths.
"""

import json

import pytest

from repro.core.baselines.in_memory import count_triangles_in_memory
from repro.experiments.parallel import (
    ParallelRunner,
    ResultSet,
    SpecExecutionError,
    dedupe_specs,
    execute_specs,
)
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.run_all import main, run_experiments, write_summary
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.store import (
    ARTIFACT_SCHEMA,
    ResultStore,
    atomic_write_json,
    atomic_write_text,
)
from repro.experiments.tasks import TASKS, execute_spec
from repro.experiments.workloads import (
    WORKLOAD_FACTORIES,
    bipartite_random,
    build_workload,
    community,
    file_workload_ref,
    from_file,
    power_law,
)
from repro.graph.generators import planted_partition, random_bipartite
from repro.graph.validation import check_canonical_edges


def tiny_spec(num_edges=60, algorithm="hu_tao_chung", seed=1):
    return make_spec(
        "edges",
        workload=workload_ref("sparse_random", num_edges=num_edges),
        algorithm=algorithm,
        memory=64,
        block=8,
        seed=seed,
    )


class TestSpecs:
    def test_payload_canonicalisation_is_key_order_independent(self):
        a = RunSpec("edges", json.dumps({"x": 1, "y": 2}, sort_keys=True, separators=(",", ":")))
        b = make_spec("edges", y=2, x=1)
        assert a == b
        assert a.spec_hash == b.spec_hash

    def test_different_payloads_hash_differently(self):
        assert tiny_spec(seed=1).spec_hash != tiny_spec(seed=2).spec_hash
        assert tiny_spec().spec_hash != make_spec("kclique", **tiny_spec().payload).spec_hash

    def test_non_json_payload_raises_immediately(self):
        with pytest.raises(TypeError):
            make_spec("edges", workload=object())

    def test_every_experiment_expands_deterministically(self):
        for module in EXPERIMENTS.values():
            first = module.specs(quick=True)
            second = module.specs(quick=True)
            assert [s.spec_hash for s in first] == [s.spec_hash for s in second]
            assert first, f"{module.EXPERIMENT_ID} expanded to no specs"
            for spec in first:
                assert spec.task in TASKS
                # payloads must already be canonical JSON
                assert spec == make_spec(spec.task, **spec.payload)

    def test_dedupe_keeps_first_occurrence_order(self):
        a, b = tiny_spec(seed=1), tiny_spec(seed=2)
        assert dedupe_specs([a, b, a, b, a]) == [a, b]


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        spec = tiny_spec()
        assert store.get(spec) is None
        path = store.put(spec, {"triangles": 3})
        assert path == store.path_for(spec)
        assert store.get(spec) == {"triangles": 3}
        assert spec in store
        artifact = json.loads(path.read_text())
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["spec_hash"] == spec.spec_hash
        assert artifact["payload"] == spec.payload

    def test_corrupt_or_mismatching_artifacts_are_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        store.put(spec, {"triangles": 3})

        store.path_for(spec).write_text("{ not json")
        assert store.get(spec) is None

        artifact = {
            "schema": "other/v9",
            "spec_hash": spec.spec_hash,
            "task": spec.task,
            "result": {},
        }
        store.path_for(spec).write_text(json.dumps(artifact))
        assert store.get(spec) is None

    def test_list_skips_sidecars_and_foreign_files(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        good = tiny_spec(seed=1)
        store.put(good, {"triangles": 3})
        # Every kind of non-artifact neighbour the directory accumulates in
        # practice: failure sidecars, quarantined corruption, in-flight temp
        # files, run summaries, and plain junk.
        store.put_failure(tiny_spec(seed=2), "worker died")
        (store.root / "deadbeefdeadbeef.json.corrupt").write_text("{ not json")
        (store.root / "feedfacefeedface.json.tmp123").write_text("in flight")
        (store.root / "cafecafecafecafe.json").write_text("{ also not json")
        atomic_write_json(store.root / "results.json", {"summary": True})
        store.put(good, {"triangles": 3})  # re-put after the litter

        artifacts = store.list()
        assert [a["spec_hash"] for a in artifacts] == [good.spec_hash]
        assert artifacts[0]["result"] == {"triangles": 3}
        assert [a["spec_hash"] for a in store] == [good.spec_hash]

    def test_list_on_missing_directory_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "never-created").list() == []

    def test_resume_does_zero_new_work(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        specs = [tiny_spec(seed=seed) for seed in (1, 2)]

        first = ParallelRunner(store=store, jobs=1).run(specs)
        assert first.executed == 2 and first.cached == 0
        assert len(store.artifact_paths()) == 2

        second = ParallelRunner(store=store, jobs=1).run(specs)
        assert second.executed == 0 and second.cached == 2
        for spec in specs:
            assert first[spec] == second[spec]


class TestAtomicWrites:
    def test_atomic_write_json_round_trip_and_no_temp_litter(self, tmp_path):
        target = tmp_path / "deep" / "results.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}
        assert [p.name for p in target.parent.iterdir()] == ["results.json"]

    def test_failed_write_leaves_previous_content_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "summary.json"
        atomic_write_json(target, {"generation": 1})

        import repro.experiments.store as store_module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "{ torn garbage")
        monkeypatch.undo()
        # The crash mid-write neither corrupted the target nor left a temp file.
        assert json.loads(target.read_text()) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["summary.json"]

    def test_temp_files_never_match_the_artifact_glob(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        path = store.put(spec, {"triangles": 3})
        temp_name = path.with_name(f"{path.name}.tmp123").name
        (tmp_path / temp_name).write_text("in flight")
        assert [p.name for p in store.artifact_paths()] == [path.name]


class TestConcurrentWriters:
    """The service answers concurrent clients from one store: many threads
    may ``put`` the same spec while others ``get`` it.  ``atomic_write_json``
    (write to ``.tmp<pid>``, then ``os.replace``) is what makes that safe --
    these tests pin the guarantee."""

    def test_same_spec_hash_never_tears_or_double_writes(self, tmp_path):
        import threading

        store = ResultStore(tmp_path / "results")
        spec = tiny_spec()
        result = {"triangles": 7, "blob": "x" * 4096}  # big enough to tear
        errors: list[str] = []
        start = threading.Barrier(12)

        def writer() -> None:
            start.wait()
            for _ in range(50):
                store.put(spec, result)

        def reader() -> None:
            start.wait()
            for _ in range(200):
                seen = store.get(spec)
                if seen is not None and seen != result:
                    errors.append(f"torn read: {seen!r}")

        threads = [threading.Thread(target=writer) for _ in range(8)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        # Exactly one artifact, intact, and no quarantine or temp litter.
        names = sorted(p.name for p in store.root.iterdir())
        assert names == [f"{spec.spec_hash}.json"]
        assert store.get(spec) == result

    def test_distinct_specs_written_concurrently_all_land(self, tmp_path):
        import threading

        store = ResultStore(tmp_path / "results")
        specs = [tiny_spec(seed=seed) for seed in range(16)]
        start = threading.Barrier(16)

        def writer(spec) -> None:
            start.wait()
            store.put(spec, {"seed_echo": spec.payload["seed"]})

        threads = [threading.Thread(target=writer, args=(spec,)) for spec in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for spec in specs:
            assert store.get(spec) == {"seed_echo": spec.payload["seed"]}
        assert len(store.list()) == 16


class TestParallelRunner:
    def test_serial_execution_matches_oracle(self):
        spec = tiny_spec()
        results = execute_specs([spec])
        workload = build_workload(spec.payload["workload"])
        assert results[spec]["triangles"] == count_triangles_in_memory(workload.edges)

    def test_parallel_results_identical_to_serial(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in (1, 2, 3)]
        serial = ParallelRunner(store=None, jobs=1).run(specs)
        parallel = ParallelRunner(store=ResultStore(tmp_path), jobs=2).run(specs)

        def counters(result):
            # everything but wall-clock time must be bit-identical
            return {k: v for k, v in result.items() if k != "wall_time_seconds"}

        for spec in specs:
            assert counters(serial[spec]) == counters(parallel[spec])

    def test_failed_cell_is_reported_not_raised(self):
        bad = make_spec("edges", workload=workload_ref("nope"), algorithm="x", memory=1, block=1)
        results = ParallelRunner(store=None, jobs=1).run([bad])
        assert results.executed == 0
        assert list(results.errors) == [bad.spec_hash]
        with pytest.raises(SpecExecutionError):
            results[bad]
        assert results.get(bad) is None

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_unknown_task_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown task"):
            execute_spec(make_spec("no_such_task"))

    def test_edges_task_accepts_sharding(self):
        serial = execute_spec(tiny_spec(algorithm="cache_aware"))
        sharded_spec = make_spec(
            "edges",
            workload=workload_ref("sparse_random", num_edges=60),
            algorithm="cache_aware",
            memory=64,
            block=8,
            seed=1,
            shards=2,
        )
        sharded = execute_spec(sharded_spec)
        assert sharded["triangles"] == serial["triangles"]
        assert sharded["shards"] == 2
        # The engine's triples mode keeps sharded counters bit-identical to
        # the serial run with the same colouring.
        colored = execute_spec(
            make_spec(
                "edges",
                workload=workload_ref("sparse_random", num_edges=60),
                algorithm="cache_aware",
                memory=64,
                block=8,
                seed=1,
                options={"num_colors": 2},
            )
        )
        for field in ("reads", "writes", "operations", "total_ios", "phases"):
            assert sharded[field] == colored[field]


class TestNewWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: power_law(300),
            lambda: community(300),
            lambda: bipartite_random(300),
        ],
    )
    def test_canonical_named_and_reproducible(self, factory):
        workload = factory()
        check_canonical_edges(workload.edges)
        assert workload.name
        assert workload.num_edges > 0
        assert workload.edges == factory().edges

    def test_bipartite_random_is_triangle_free(self):
        assert count_triangles_in_memory(bipartite_random(400).edges) == 0

    def test_community_is_triangle_rich(self):
        workload = community(600)
        assert count_triangles_in_memory(workload.edges) > 0

    def test_power_law_triangles_match_oracle_through_runner(self):
        spec = make_spec(
            "edges",
            workload=workload_ref("power_law", num_edges=200),
            algorithm="cache_aware",
            memory=64,
            block=8,
            seed=1,
        )
        results = execute_specs([spec])
        oracle = count_triangles_in_memory(power_law(200).edges)
        assert results[spec]["triangles"] == oracle

    def test_from_file_loads_snap_style_edge_lists(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("# SNAP-style comment\n0 1\n1 2\n0 2\n2 3\n")
        workload = from_file(str(path))
        check_canonical_edges(workload.edges)
        assert workload.num_edges == 4
        assert count_triangles_in_memory(workload.edges) == 1
        assert workload.name == "file-toy"

    def test_generators_reject_impossible_edge_counts(self):
        with pytest.raises(ValueError):
            planted_partition(2, 3, intra_edges=20, inter_edges=0)
        with pytest.raises(ValueError):
            planted_partition(2, 3, intra_edges=6, inter_edges=20)
        with pytest.raises(ValueError):
            random_bipartite(3, 3, 10)

    def test_file_workload_ref_pins_content_digest(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("0 1\n1 2\n0 2\n")
        reference = file_workload_ref(path)
        spec = make_spec("edges", workload=reference, algorithm="x", memory=64, block=8)
        assert build_workload(reference).num_edges == 3

        path.write_text("0 1\n1 2\n0 2\n2 3\n")
        changed = file_workload_ref(path)
        assert changed != reference  # edits re-address every dependent spec
        changed_spec = make_spec("edges", workload=changed, algorithm="x", memory=64, block=8)
        assert changed_spec.spec_hash != spec.spec_hash
        # a stale spec fails loudly instead of computing on the wrong graph
        with pytest.raises(ValueError, match="changed since the spec was built"):
            build_workload(reference)

    def test_factory_registry_round_trip(self):
        for name in ("power_law", "community", "bipartite_random"):
            assert name in WORKLOAD_FACTORIES
            built = build_workload([name, {"num_edges": 120}])
            assert built.num_edges > 0

    def test_malformed_workload_reference(self):
        with pytest.raises(ValueError):
            build_workload("not-a-pair")
        with pytest.raises(KeyError, match="unknown workload factory"):
            build_workload(["nope", {}])


class _BrokenExperiment:
    EXPERIMENT_ID = "EXP99"
    TITLE = "broken"
    CLAIM = "broken"

    @staticmethod
    def specs(quick=True):
        raise RuntimeError("boom in specs")

    @staticmethod
    def tabulate(results, quick=True):  # pragma: no cover - never reached
        raise AssertionError

    run = None


class TestRunAll:
    def test_failing_experiment_yields_nonzero_exit(self, monkeypatch, capsys):
        monkeypatch.setitem(EXPERIMENTS, "EXP99", _BrokenExperiment)
        exit_code = main(["--quick", "--no-store", "EXP99"])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "boom in specs" in captured.err

    def test_unknown_experiment_id_yields_exit_2(self, capsys):
        assert main(["--quick", "--no-store", "EXP0"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_output_file_and_summary_written(self, tmp_path, capsys):
        output = tmp_path / "tables.txt"
        summary = tmp_path / "summary.json"
        exit_code = main(
            [
                "--quick",
                "--jobs",
                "1",
                "--results-dir",
                str(tmp_path / "results"),
                "--output",
                str(output),
                "--json",
                str(summary),
                "EXP4",
            ]
        )
        assert exit_code == 0
        text = output.read_text()
        assert text.startswith("=== EXP4")
        assert "cells:" in text

        payload = json.loads(summary.read_text())
        assert payload["schema"] == "repro-results/v1"
        assert payload["cells"]["executed"] > 0
        assert "EXP4" in payload["experiments"]
        assert not payload["failures"]

        # every executed cell left a JSON artifact behind
        store = ResultStore(tmp_path / "results")
        assert len(store.artifact_paths()) >= payload["cells"]["executed"]

    def test_rerun_resumes_from_store_with_identical_tables(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        first = run_experiments(["EXP4"], quick=True, jobs=1, store=store)
        second = run_experiments(["EXP4"], quick=True, jobs=1, store=store)
        assert first.ok and second.ok
        assert first.executed > 0
        assert second.executed == 0
        assert second.cached == first.total_cells
        assert first.render_tables() == second.render_tables()

    def test_write_summary_creates_parent_directories(self, tmp_path):
        report = run_experiments(["EXP4"], quick=True, jobs=1, store=None)
        target = tmp_path / "nested" / "dir" / "results.json"
        write_summary(report, target)
        assert json.loads(target.read_text())["schema"] == "repro-results/v1"

    def test_tabulate_failure_is_reported(self, monkeypatch):
        module = EXPERIMENTS["EXP4"]

        def broken_tabulate(results, quick=True):
            raise RuntimeError("boom in tabulate")

        monkeypatch.setattr(module, "tabulate", broken_tabulate)
        report = run_experiments(["EXP4"], quick=True, jobs=1, store=None)
        assert not report.ok
        assert report.failures[0].stage == "tabulate"
        assert report.failures[0].experiment_id == "EXP4"


class TestResultSetApi:
    def test_missing_spec_raises_key_error(self):
        results = ResultSet({})
        with pytest.raises(KeyError):
            results[tiny_spec()]
        assert tiny_spec() not in results
        assert len(results) == 0
