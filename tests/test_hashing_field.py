"""Tests for Mersenne-prime field arithmetic (repro.hashing.field)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.field import MERSENNE_PRIME, mod_p, poly_eval


class TestModP:
    def test_prime_is_mersenne_61(self):
        assert MERSENNE_PRIME == 2**61 - 1

    def test_reduction_of_small_values(self):
        assert mod_p(5) == 5
        assert mod_p(0) == 0

    def test_reduction_of_prime_is_zero(self):
        assert mod_p(MERSENNE_PRIME) == 0
        assert mod_p(2 * MERSENNE_PRIME + 7) == 7


class TestPolyEval:
    def test_constant_polynomial(self):
        assert poly_eval([42], 1234) == 42

    def test_linear_polynomial(self):
        # 3 + 5x at x = 10
        assert poly_eval([3, 5], 10) == 53

    def test_cubic_polynomial(self):
        coefficients = [1, 2, 3, 4]  # 1 + 2x + 3x^2 + 4x^3
        x = 7
        expected = (1 + 2 * x + 3 * x**2 + 4 * x**3) % MERSENNE_PRIME
        assert poly_eval(coefficients, x) == expected

    def test_empty_polynomial_is_zero(self):
        assert poly_eval([], 99) == 0

    @given(
        coefficients=st.lists(
            st.integers(min_value=0, max_value=MERSENNE_PRIME - 1), min_size=1, max_size=5
        ),
        x=st.integers(min_value=0, max_value=MERSENNE_PRIME - 1),
    )
    def test_property_matches_direct_evaluation(self, coefficients, x):
        expected = sum(c * pow(x, i, MERSENNE_PRIME) for i, c in enumerate(coefficients))
        assert poly_eval(coefficients, x) == expected % MERSENNE_PRIME

    def test_result_always_reduced(self):
        value = poly_eval([MERSENNE_PRIME - 1] * 4, MERSENNE_PRIME - 2)
        assert 0 <= value < MERSENNE_PRIME
