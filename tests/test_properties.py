"""Hypothesis property tests on the core invariants.

The central contract of the paper's problem definition is *exactly-once
emission*: for every triangle of the input graph, each algorithm calls
``emit`` exactly once (no misses, no duplicates), whatever the graph and
whatever the machine parameters.  These properties drive random graphs and
random machine shapes through every algorithm and compare against the
in-memory oracle, with the :class:`DedupCheckingSink` enforcing uniqueness.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.emit import DedupCheckingSink
from repro.experiments.runner import run_on_edges
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.graph import Graph
from repro.graph.validation import normalize_edges


@st.composite
def random_graphs(draw, max_vertices: int = 24, max_edges: int = 80):
    """A random simple graph given as a canonical ranked edge list."""
    num_vertices = draw(st.integers(min_value=3, max_value=max_vertices))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=num_vertices - 1),
        st.integers(min_value=0, max_value=num_vertices - 1),
    ).filter(lambda edge: edge[0] != edge[1])
    raw_edges = draw(st.lists(pairs, max_size=max_edges))
    graph = Graph(edges=normalize_edges(raw_edges), vertices=range(num_vertices))
    return graph.degree_order().edges


@st.composite
def machine_params(draw):
    """A small random machine shape (always at least two blocks of memory)."""
    block = draw(st.sampled_from([4, 8, 16]))
    blocks_in_memory = draw(st.integers(min_value=2, max_value=16))
    return MachineParams(memory_words=block * blocks_in_memory, block_words=block)


EXTERNAL_ALGORITHMS = ["cache_aware", "deterministic", "hu_tao_chung", "dementiev", "bnlj"]


@pytest.mark.parametrize("algorithm", EXTERNAL_ALGORITHMS)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=random_graphs(), params=machine_params(), data=st.data())
def test_property_exactly_once_and_complete(algorithm, edges, params, data):
    """Every external-memory algorithm emits exactly the oracle's triangle set."""
    expected = set(triangles_in_memory(edges))
    seed = data.draw(st.integers(min_value=0, max_value=2**20))
    options = {"max_family_size": 16} if algorithm == "deterministic" else {}
    stats = IOStats()
    machine = Machine(params, stats)
    edge_file = machine.file_from_records(edges)
    sink = DedupCheckingSink()

    if algorithm == "cache_aware":
        from repro.core.cache_aware import cache_aware_randomized

        cache_aware_randomized(machine, edge_file, sink, seed=seed)
    elif algorithm == "deterministic":
        from repro.core.derandomized import deterministic_cache_aware

        deterministic_cache_aware(machine, edge_file, sink, **options)
    elif algorithm == "hu_tao_chung":
        from repro.core.baselines.hu_tao_chung import hu_tao_chung

        hu_tao_chung(machine, edge_file, sink)
    elif algorithm == "dementiev":
        from repro.core.baselines.dementiev import dementiev_sort_based

        dementiev_sort_based(machine, edge_file, sink)
    else:
        from repro.core.baselines.bnlj import block_nested_loop_join

        block_nested_loop_join(machine, edge_file, sink)

    assert sink.as_set() == expected


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=random_graphs(max_vertices=18, max_edges=50), params=machine_params(), seed=st.integers(0, 1000))
def test_property_cache_oblivious_exactly_once_and_complete(edges, params, seed):
    """The cache-oblivious algorithm satisfies the same contract on any machine shape."""
    from repro.core.cache_oblivious import cache_oblivious_randomized
    from repro.extmem.oblivious import ObliviousVM
    from repro.graph.io import edges_to_vector

    expected = set(triangles_in_memory(edges))
    vm = ObliviousVM(params, IOStats())
    vector = edges_to_vector(vm, edges)
    sink = DedupCheckingSink()
    cache_oblivious_randomized(vm, vector, sink, seed=seed)
    assert sink.as_set() == expected


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=random_graphs(), seed=st.integers(0, 10**6))
def test_property_seed_does_not_change_the_answer(edges, seed):
    """Randomness may change I/O counts but never the emitted triangle set."""
    params = MachineParams(64, 8)
    baseline = run_on_edges(edges, "cache_aware", params, seed=0)
    other = run_on_edges(edges, "cache_aware", params, seed=seed)
    assert baseline.triangle_count == other.triangle_count


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=random_graphs(), params=machine_params())
def test_property_io_counts_are_deterministic_given_seed(edges, params):
    """Re-running the same algorithm with the same seed reproduces the I/O trace."""
    first = run_on_edges(edges, "cache_aware", params, seed=7)
    second = run_on_edges(edges, "cache_aware", params, seed=7)
    assert (first.reads, first.writes, first.operations) == (
        second.reads,
        second.writes,
        second.operations,
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=random_graphs(max_vertices=20, max_edges=60))
def test_property_triangle_count_invariant_under_relabelling(edges):
    """Shuffling vertex labels must not change the number of triangles found."""
    params = MachineParams(64, 8)
    base = run_on_edges(edges, "cache_aware", params, seed=3)
    offset = 1000
    relabelled = normalize_edges([(u + offset, v + offset) for u, v in edges])
    relabelled_graph = Graph(edges=relabelled)
    relabelled_canonical = relabelled_graph.degree_order().edges
    shifted = run_on_edges(relabelled_canonical, "cache_aware", params, seed=3)
    assert base.triangle_count == shifted.triangle_count
