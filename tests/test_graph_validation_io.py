"""Tests for edge-list validation and external-memory graph I/O."""

import pytest

from repro.analysis.model import MachineParams
from repro.exceptions import GraphFormatError
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph
from repro.graph.io import (
    edges_to_file,
    edges_to_vector,
    file_to_edges,
    graph_to_file,
    graph_to_vector,
)
from repro.graph.validation import check_canonical_edges, max_vertex, normalize_edges


class TestNormalize:
    def test_orients_dedupes_and_sorts(self):
        edges = [(3, 1), (1, 3), (2, 5), (0, 1)]
        assert normalize_edges(edges) == [(0, 1), (1, 3), (2, 5)]

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            normalize_edges([(2, 2)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            normalize_edges([(-1, 2)])

    def test_empty_list(self):
        assert normalize_edges([]) == []


class TestCheckCanonical:
    def test_accepts_canonical_list(self):
        check_canonical_edges([(0, 1), (0, 2), (1, 2)])

    def test_rejects_unsorted(self):
        with pytest.raises(GraphFormatError):
            check_canonical_edges([(1, 2), (0, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(GraphFormatError):
            check_canonical_edges([(0, 1), (0, 1)])

    def test_rejects_bad_orientation(self):
        with pytest.raises(GraphFormatError):
            check_canonical_edges([(2, 1)])

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError):
            check_canonical_edges([(0.5, 1)])

    def test_rejects_non_pairs(self):
        with pytest.raises(GraphFormatError):
            check_canonical_edges([(0, 1, 2)])

    def test_max_vertex(self):
        assert max_vertex([]) == -1
        assert max_vertex([(0, 7), (2, 3)]) == 7


class TestExternalIO:
    def test_edges_to_file_charges_no_io(self):
        machine = Machine(MachineParams(64, 8), IOStats())
        edges = [(0, 1), (1, 2)]
        file = edges_to_file(machine, edges)
        assert machine.stats.total == 0
        assert file_to_edges(file) == edges

    def test_edges_to_file_validates(self):
        machine = Machine(MachineParams(64, 8), IOStats())
        with pytest.raises(GraphFormatError):
            edges_to_file(machine, [(1, 0)])

    def test_edges_to_vector_round_trip(self):
        vm = ObliviousVM(MachineParams(64, 8), IOStats())
        edges = [(0, 2), (1, 3)]
        vector = edges_to_vector(vm, edges)
        assert vector.to_list() == edges
        assert vm.stats.total == 0

    def test_graph_to_file_canonicalises(self):
        machine = Machine(MachineParams(64, 8), IOStats())
        graph = Graph(edges=[("b", "a"), ("c", "a"), ("b", "c")])
        file, order = graph_to_file(machine, graph)
        check_canonical_edges(file_to_edges(file))
        assert order.num_edges == 3

    def test_graph_to_vector_matches_order(self):
        vm = ObliviousVM(MachineParams(64, 8), IOStats())
        graph = erdos_renyi_gnm(30, 60, seed=4)
        vector, order = graph_to_vector(vm, graph)
        assert vector.to_list() == order.edges
