"""Tests for the emission protocol (repro.core.emit) and ordering helpers."""

import pytest

from repro.core.emit import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    DedupCheckingSink,
    FilteringSink,
    sorted_triangle,
    triangles_as_set,
)
from repro.core.ordering import (
    cone_vertex,
    degrees_from_edges,
    forward_adjacency,
    pivot_edge,
)
from repro.exceptions import AlgorithmError


class TestSortedTriangle:
    @pytest.mark.parametrize(
        "triple", [(1, 2, 3), (3, 2, 1), (2, 3, 1), (3, 1, 2), (1, 3, 2), (2, 1, 3)]
    )
    def test_all_permutations_normalise(self, triple):
        assert sorted_triangle(*triple) == (1, 2, 3)

    @pytest.mark.parametrize("triple", [(1, 1, 2), (1, 2, 2), (3, 3, 3)])
    def test_degenerate_triples_rejected(self, triple):
        with pytest.raises(AlgorithmError):
            sorted_triangle(*triple)


class TestSinks:
    def test_counting_sink(self):
        sink = CountingSink()
        sink.emit(1, 2, 3)
        sink.emit(4, 5, 6)
        assert sink.count == 2

    def test_collecting_sink_normalises(self):
        sink = CollectingSink()
        sink.emit(3, 1, 2)
        assert sink.triangles == [(1, 2, 3)]
        assert sink.as_set() == {(1, 2, 3)}
        assert sink.count == 1

    def test_dedup_sink_accepts_distinct_triangles(self):
        sink = DedupCheckingSink()
        sink.emit(1, 2, 3)
        sink.emit(1, 2, 4)
        assert sink.count == 2
        assert sink.as_set() == {(1, 2, 3), (1, 2, 4)}

    def test_dedup_sink_rejects_duplicates_in_any_order(self):
        sink = DedupCheckingSink()
        sink.emit(1, 2, 3)
        with pytest.raises(AlgorithmError):
            sink.emit(3, 2, 1)

    def test_dedup_sink_forwards_to_inner(self):
        inner = CollectingSink()
        sink = DedupCheckingSink(inner)
        sink.emit(2, 1, 3)
        assert inner.triangles == [(1, 2, 3)]

    def test_callback_sink(self):
        received = []
        sink = CallbackSink(lambda a, b, c: received.append((a, b, c)))
        sink.emit(1, 2, 3)
        assert received == [(1, 2, 3)]
        assert sink.count == 1

    def test_filtering_sink(self):
        inner = CollectingSink()
        sink = FilteringSink(inner, predicate=lambda t: t[0] == 0)
        sink.emit(0, 1, 2)
        sink.emit(1, 2, 3)
        assert inner.as_set() == {(0, 1, 2)}

    def test_triangles_as_set(self):
        assert triangles_as_set([(3, 2, 1), (1, 2, 3), (4, 5, 6)]) == {(1, 2, 3), (4, 5, 6)}


class TestOrderingHelpers:
    def test_cone_and_pivot(self):
        assert cone_vertex((5, 2, 9)) == 2
        assert pivot_edge((5, 2, 9)) == (5, 9)

    def test_degrees_from_edges(self):
        degrees = degrees_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        assert degrees[0] == 2
        assert degrees[2] == 3
        assert degrees[3] == 1

    def test_forward_adjacency_sorted(self):
        adjacency = forward_adjacency([(0, 5), (0, 2), (1, 3)])
        assert adjacency[0] == [2, 5]
        assert adjacency[1] == [3]
