"""Tests for the fault-tolerant execution tier (:mod:`repro.resilience`).

Covers the deterministic fault-injection harness (plan parsing, seeded
sampling, the env-var spawn boundary), the backoff policy, the supervised
pool itself against every injected failure mode (crash, hang, raised
exception) on both the serial and the pool paths, the pool-leak regression
in :func:`repro.parallel.spawn_map_unordered`, clean teardown under
``KeyboardInterrupt``, the store's corrupt-artifact quarantine and failure
records, and the end-to-end determinism property: orchestrated and sharded
runs under an injected fault plan are bit-identical to fault-free runs.

Every test that could conceivably hang runs under a SIGALRM watchdog.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.sharding import ShardExecutionError
from repro.exceptions import OptionsError, StreamWorkerError
from repro.experiments.parallel import ParallelRunner
from repro.experiments.specs import make_spec, workload_ref
from repro.experiments.store import ResultStore
from repro.graph.generators import erdos_renyi_gnm
from repro.parallel import spawn_map_unordered
from repro.resilience import (
    FAULT_PLAN_ENV,
    BackoffPolicy,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    active_plan,
    supervised_map_unordered,
)

#: Zero-delay backoff so retry-heavy tests do not sleep.
FAST = BackoffPolicy(base_seconds=0.0, jitter=0.0)


@contextmanager
def watchdog(seconds: float):
    """Fail the test (instead of hanging the suite) after ``seconds``."""

    def alarm(signum, frame):
        raise TimeoutError(f"watchdog: test exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def assert_children_gone(before: set[int], deadline: float = 15.0) -> None:
    """Poll until every child process spawned since ``before`` is reaped."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        leftover = {child.pid for child in multiprocessing.active_children()} - before
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphan worker processes survived teardown: {leftover}")


def child_pids() -> set[int]:
    return {child.pid for child in multiprocessing.active_children()}


# -- worker functions (module level: importable across the spawn boundary) --
def double(x):
    return x * 2


def boom(x):
    raise ValueError(f"boom {x}")


def exit_if_three(x):
    if x == 3:
        os._exit(1)
    return x


def hang_if_two(x):
    if x == 2:
        time.sleep(60)
    return x


def slow_double(x):
    time.sleep(5)
    return x * 2


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", match="spec:*", rate=0.25, seed=7),
                FaultRule(kind="hang", attempts=None, hang_seconds=12.5),
                FaultRule(kind="corrupt", match="spec:ab*"),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_activation_restores_previous_value(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        plan = FaultPlan(rules=(FaultRule(kind="exception"),))
        assert active_plan() is None
        with plan.activate():
            assert os.environ[FAULT_PLAN_ENV] == plan.to_json()
            assert active_plan() == plan
        assert FAULT_PLAN_ENV not in os.environ
        assert active_plan() is None

    def test_plan_loadable_from_file(self, tmp_path, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(kind="crash", match="shard:*"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert active_plan() == plan

    def test_rate_samples_a_deterministic_fraction(self):
        rule = FaultRule(kind="crash", rate=0.2, seed=3)
        keys = [f"spec:{i:06x}" for i in range(2000)]
        selected = {key for key in keys if rule.applies(key, 0)}
        # A sha256 coin flip at rate 0.2 over 2000 keys: well within 0.2 +/- 0.05.
        assert 300 <= len(selected) <= 500
        assert selected == {key for key in keys if rule.applies(key, 0)}
        # A different seed samples a (very probably) different subset.
        other = FaultRule(kind="crash", rate=0.2, seed=4)
        assert selected != {key for key in keys if other.applies(key, 0)}

    def test_attempt_gating(self):
        first_only = FaultRule(kind="exception", attempts=(0,))
        assert first_only.applies("spec:x", 0)
        assert not first_only.applies("spec:x", 1)
        permanent = FaultRule(kind="exception", attempts=None)
        assert permanent.applies("spec:x", 0) and permanent.applies("spec:x", 5)

    def test_fire_raises_for_exception_kind(self):
        plan = FaultPlan(rules=(FaultRule(kind="exception", match="spec:bad"),))
        with pytest.raises(FaultInjected):
            plan.fire("spec:bad", 0)
        plan.fire("spec:good", 0)  # no matching rule: no-op

    def test_crash_and_hang_degrade_to_exceptions_in_process(self):
        for kind in ("crash", "hang"):
            plan = FaultPlan(rules=(FaultRule(kind=kind),))
            with pytest.raises(FaultInjected, match="in-process"):
                plan.fire("spec:x", 0, in_process=True)

    def test_should_corrupt_only_matches_corrupt_rules(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", match="spec:a"),
                FaultRule(kind="corrupt", match="spec:b"),
            )
        )
        assert plan.should_corrupt("spec:b")
        assert not plan.should_corrupt("spec:a")

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"rules": [{"kind": "meteor-strike"}]}',
            '{"rules": [{"kind": "crash", "rate": 1.5}]}',
            '{"rules": [{"kind": "crash", "hang_seconds": -1}]}',
            '{"rules": [{"match": "*"}]}',
            '{"rules": [{"kind": "crash", "typo_field": 1}]}',
            '{"rules": ["not a dict"]}',
            '{"no_rules": true}',
        ],
    )
    def test_invalid_plans_rejected(self, payload):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(payload)


class TestBackoffPolicy:
    def test_deterministic_and_capped(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0, cap_seconds=0.5, jitter=0.1)
        delays = [policy.delay("spec:abc", attempt) for attempt in (1, 2, 3, 10)]
        assert delays == [policy.delay("spec:abc", attempt) for attempt in (1, 2, 3, 10)]
        assert all(delay <= 0.5 * 1.1 for delay in delays)
        assert delays[0] < delays[1]
        exact = BackoffPolicy(base_seconds=0.1, factor=2.0, cap_seconds=10.0, jitter=0.0)
        assert [exact.delay("k", a) for a in (1, 2, 3)] == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_varies_by_key(self):
        policy = BackoffPolicy(base_seconds=1.0, jitter=0.1)
        assert policy.delay("spec:a", 1) != policy.delay("spec:b", 1)


# ----------------------------------------------------------------------
# the supervisor: serial path
# ----------------------------------------------------------------------
class TestSupervisedSerial:
    def test_plain_run_yields_input_order(self):
        results = list(supervised_map_unordered(double, [3, 1, 2], 1))
        assert [r.value for r in results] == [6, 2, 4]
        assert all(r.ok and r.outcome.attempts == 1 for r in results)
        assert all(r.outcome.executed_serially for r in results)

    def test_injected_crash_degrades_to_in_process_retry(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", match="0"),))
        with plan.activate():
            results = list(supervised_map_unordered(double, [5, 6], 1, backoff=FAST))
        assert [r.value for r in results] == [10, 12]
        assert results[0].outcome.attempts == 2
        assert results[0].outcome.failures == ["exception"]
        assert results[1].outcome.attempts == 1

    def test_permanent_failure_yields_failed_outcome(self):
        results = list(supervised_map_unordered(boom, [1, 2], 1, max_retries=1, backoff=FAST))
        assert all(not r.ok and r.value is None for r in results)
        assert all(r.outcome.attempts == 2 for r in results)
        assert all("ValueError: boom" in r.outcome.error for r in results)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            list(supervised_map_unordered(double, [1], 1, max_retries=-1))
        with pytest.raises(ValueError):
            list(supervised_map_unordered(double, [1], 1, task_timeout=0))


# ----------------------------------------------------------------------
# the supervisor: pool path (each test under a watchdog)
# ----------------------------------------------------------------------
class TestSupervisedPool:
    def test_crashed_worker_is_detected_and_task_retried(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", match="3"),))
        before = child_pids()
        with watchdog(90), plan.activate():
            results = {
                r.index: r
                for r in supervised_map_unordered(double, list(range(6)), 2, backoff=FAST)
            }
        assert {i: r.value for i, r in results.items()} == {i: i * 2 for i in range(6)}
        assert results[3].outcome.attempts == 2
        assert results[3].outcome.failures == ["worker-lost"]
        assert all(results[i].outcome.failures == [] for i in range(6) if i != 3)
        assert_children_gone(before)

    def test_hung_task_times_out_and_retries(self):
        plan = FaultPlan(rules=(FaultRule(kind="hang", match="1", hang_seconds=60.0),))
        before = child_pids()
        with watchdog(90), plan.activate():
            results = {
                r.index: r
                for r in supervised_map_unordered(
                    double, list(range(4)), 2, task_timeout=2.0, backoff=FAST
                )
            }
        assert {i: r.value for i, r in results.items()} == {i: i * 2 for i in range(4)}
        assert results[1].outcome.failures == ["timeout"]
        assert results[1].outcome.attempts == 2
        assert_children_gone(before)

    def test_worker_os_exit_without_fault_plan_terminates_cleanly(self):
        # The satellite scenario: a task that always kills its worker must
        # exhaust retries and be reported, never hang the run or leak workers.
        before = child_pids()
        with watchdog(90):
            results = {
                r.index: r
                for r in supervised_map_unordered(
                    exit_if_three, list(range(5)), 2, max_retries=1, backoff=FAST
                )
            }
        assert not results[3].ok
        assert results[3].outcome.failures == ["worker-lost", "worker-lost"]
        assert all(results[i].value == i for i in range(5) if i != 3)
        assert_children_gone(before)

    def test_task_sleeping_past_timeout_terminates_cleanly(self):
        before = child_pids()
        with watchdog(90):
            results = {
                r.index: r
                for r in supervised_map_unordered(
                    hang_if_two, list(range(4)), 2, task_timeout=1.5, max_retries=1, backoff=FAST
                )
            }
        assert not results[2].ok
        assert results[2].outcome.failures == ["timeout", "timeout"]
        assert all(results[i].value == i for i in range(4) if i != 2)
        assert_children_gone(before)

    def test_permanent_exception_fails_only_the_poisoned_item(self):
        plan = FaultPlan(rules=(FaultRule(kind="exception", match="2", attempts=None),))
        with watchdog(90), plan.activate():
            results = {
                r.index: r
                for r in supervised_map_unordered(
                    double, list(range(4)), 2, max_retries=1, backoff=FAST
                )
            }
        assert not results[2].ok
        assert results[2].outcome.failures == ["exception", "exception"]
        assert "FaultInjected" in results[2].outcome.error
        assert all(results[i].value == i * 2 for i in range(4) if i != 2)

    def test_abandoning_the_iterator_reaps_the_pool(self):
        before = child_pids()
        with watchdog(90):
            iterator = supervised_map_unordered(slow_double, list(range(6)), 2)
            iterator.close()
        assert_children_gone(before)


class TestSpawnPoolLeak:
    def test_abandoned_spawn_map_reaps_its_workers(self):
        # Regression: closing the generator mid-stream used to leave pool
        # teardown to the garbage collector.
        before = child_pids()
        with watchdog(90):
            iterator = spawn_map_unordered(slow_double, list(range(6)), 2)
            iterator.close()
        assert_children_gone(before)


KEYBOARD_INTERRUPT_SCRIPT = """\
import multiprocessing
import os
import sys
import threading
import time

sys.path.insert(0, {src_path!r})
from repro.resilience import supervised_map_unordered


def slow(x):
    time.sleep(60)
    return x


def snapshot_children(path):
    seen = set()
    while True:
        for child in multiprocessing.active_children():
            if child.pid is not None:
                seen.add(child.pid)
        with open(path + ".tmp", "w") as handle:
            handle.write("\\n".join(str(pid) for pid in sorted(seen)))
        os.replace(path + ".tmp", path)
        time.sleep(0.05)


if __name__ == "__main__":
    pid_file = sys.argv[1]
    threading.Thread(target=snapshot_children, args=(pid_file,), daemon=True).start()
    print("READY", flush=True)
    for result in supervised_map_unordered(slow, list(range(4)), 2):
        pass
"""


class TestKeyboardInterrupt:
    def test_sigint_during_supervised_run_terminates_cleanly(self, tmp_path):
        src_path = str((os.path.dirname(os.path.dirname(os.path.abspath(__file__)))) or ".")
        script = tmp_path / "interrupt_me.py"
        script.write_text(
            KEYBOARD_INTERRUPT_SCRIPT.format(src_path=os.path.join(src_path, "src"))
        )
        pid_file = tmp_path / "worker_pids.txt"
        with watchdog(120):
            process = subprocess.Popen(
                [sys.executable, str(script), str(pid_file)],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
            try:
                assert process.stdout.readline().strip() == "READY"
                # Wait until at least one pool worker is up before interrupting.
                deadline = time.monotonic() + 60
                workers: list[int] = []
                while time.monotonic() < deadline and not workers:
                    if pid_file.exists() and pid_file.read_text().strip():
                        workers = [int(line) for line in pid_file.read_text().split()]
                    time.sleep(0.1)
                assert workers, "pool workers never started"
                process.send_signal(signal.SIGINT)
                returncode = process.wait(timeout=60)
            finally:
                if process.poll() is None:
                    process.kill()
                    process.wait()
            assert returncode != 0  # KeyboardInterrupt, not a clean exit
            # Every worker the run ever started must be gone shortly after.
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                alive = [pid for pid in workers if _pid_alive(pid)]
                if not alive:
                    break
                time.sleep(0.1)
            assert not alive, f"orphaned pool workers after SIGINT: {alive}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


# ----------------------------------------------------------------------
# store hardening: quarantine and failure records
# ----------------------------------------------------------------------
def tiny_spec(num_edges=60, seed=1):
    return make_spec(
        "edges",
        workload=workload_ref("sparse_random", num_edges=num_edges),
        algorithm="hu_tao_chung",
        memory=64,
        block=8,
        seed=seed,
    )


class TestStoreQuarantine:
    def test_truncated_artifact_is_quarantined_and_logged(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        path = store.put(spec, {"triangles": 3})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert store.get(spec) is None
        assert "quarantined corrupt artifact" in caplog.text
        assert not path.exists()
        quarantined = path.with_name(f"{path.name}.corrupt")
        assert quarantined.exists()
        assert quarantined.read_text() == text[: len(text) // 2]
        # The store recovers: the cell is a clean miss and can be re-put.
        assert store.get(spec) is None
        store.put(spec, {"triangles": 3})
        assert store.get(spec) == {"triangles": 3}

    def test_schema_mismatch_is_a_miss_without_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        path = store.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"schema": "other/v9"}))
        assert store.get(spec) is None
        assert path.exists()  # valid JSON, wrong schema: kept in place

    def test_quarantined_files_do_not_match_the_artifact_glob(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        path = store.put(spec, {"triangles": 3})
        path.write_text("{ torn")
        assert store.get(spec) is None
        assert store.artifact_paths() == []


class TestFailureRecords:
    def test_round_trip_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        assert store.get_failure(spec) is None
        store.put_failure(spec, "Traceback: boom", attempts=3)
        record = store.get_failure(spec)
        assert record["attempts"] == 3
        assert record["error"] == "Traceback: boom"
        assert record["spec_hash"] == spec.spec_hash
        # Failure records never masquerade as artifacts.
        assert store.artifact_paths() == []
        assert store.get(spec) is None
        store.clear_failure(spec)
        assert store.get_failure(spec) is None
        store.clear_failure(spec)  # idempotent

    def test_failed_cell_persists_record_and_success_clears_it(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        plan = FaultPlan(
            rules=(FaultRule(kind="exception", match=f"spec:{spec.spec_hash}", attempts=None),)
        )
        with plan.activate():
            failed = ParallelRunner(store=store, jobs=1, max_retries=0, backoff=FAST).run([spec])
        assert list(failed.errors) == [spec.spec_hash]
        assert store.get_failure(spec) is not None
        assert store.get(spec) is None

        # Next run (fault gone): reports the retry, succeeds, clears the record.
        messages: list[str] = []
        ok = ParallelRunner(store=store, jobs=1, progress=messages.append).run([spec])
        assert ok.errors == {}
        assert any("1 cells failed last run, retrying" in m for m in messages)
        assert store.get_failure(spec) is None
        assert store.get(spec) == ok[spec]


# ----------------------------------------------------------------------
# end-to-end determinism under injected faults
# ----------------------------------------------------------------------
def strip_wall_time(result: dict) -> dict:
    return {k: v for k, v in result.items() if k != "wall_time_seconds"}


class TestOrchestrationUnderFaults:
    def test_faulted_parallel_run_is_bit_identical_to_fault_free(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in (1, 2, 3, 4, 5)]
        baseline = ParallelRunner(store=None, jobs=1).run(specs)

        # Deterministically fault 3 of the 5 cells: one crash, one hang
        # (reaped by the task timeout), one first-attempt exception.
        keys = [f"spec:{spec.spec_hash}" for spec in specs]
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", match=keys[0]),
                FaultRule(kind="hang", match=keys[1], hang_seconds=60.0),
                FaultRule(kind="exception", match=keys[2]),
            )
        )
        store = ResultStore(tmp_path)
        with watchdog(300), plan.activate():
            faulted = ParallelRunner(
                store=store, jobs=2, task_timeout=30.0, backoff=FAST
            ).run(specs)

        assert faulted.errors == {}
        assert faulted.retried == 3
        for spec in specs:
            assert strip_wall_time(faulted[spec]) == strip_wall_time(baseline[spec])
        outcomes = faulted.outcomes
        assert outcomes[specs[0].spec_hash].failures == ["worker-lost"]
        assert outcomes[specs[1].spec_hash].failures == ["timeout"]
        assert outcomes[specs[2].spec_hash].failures == ["exception"]

    def test_corrupt_fault_round_trips_through_quarantine(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        plan = FaultPlan(
            rules=(FaultRule(kind="corrupt", match=f"spec:{spec.spec_hash}"),)
        )
        with plan.activate():
            first = ParallelRunner(store=store, jobs=1).run([spec])
        assert first.executed == 1
        # The persisted artifact was truncated post-put; the resume path
        # quarantines it and re-executes, bit-identically.
        second = ParallelRunner(store=store, jobs=1).run([spec])
        assert second.cached == 0 and second.executed == 1
        assert strip_wall_time(second[spec]) == strip_wall_time(first[spec])
        assert store.path_for(spec).with_name(
            f"{store.path_for(spec).name}.corrupt"
        ).exists()
        # Third run resumes from the freshly stored artifact.
        third = ParallelRunner(store=store, jobs=1).run([spec])
        assert third.cached == 1 and third.executed == 0


class TestShardingUnderFaults:
    def make_engine(self) -> TriangleEngine:
        graph = erdos_renyi_gnm(60, 240, seed=3)
        return TriangleEngine(graph, params=MachineParams(memory_words=64, block_words=8))

    def test_faulted_sharded_run_matches_serial_bit_for_bit(self):
        engine = self.make_engine()
        serial = engine.run("cache_aware", seed=1, options={"num_colors": 2}, collect=True)
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", match="shard:*", rate=0.4, seed=11),
                FaultRule(kind="exception", match="shard:*", rate=0.3, seed=12),
            )
        )
        # The sampled rules must actually fault a decent fraction of shards
        # for this test to mean anything.
        faulted_keys = [k for k in (f"shard:{i}" for i in range(8)) if plan.rule_for(k, 0)]
        assert len(faulted_keys) >= 2
        with watchdog(300), plan.activate():
            sharded = engine.run("cache_aware", seed=1, shards=2, jobs=2, collect=True)
        assert sharded.io == serial.io
        assert sharded.phases == serial.phases
        assert sharded.triangle_count == serial.triangle_count
        assert sharded.triangles == serial.triangles

    def test_persistent_shard_fault_raises_instead_of_hanging(self):
        engine = self.make_engine()
        plan = FaultPlan(rules=(FaultRule(kind="exception", match="shard:0", attempts=None),))
        with watchdog(300), plan.activate():
            with pytest.raises(ShardExecutionError, match="attempts"):
                engine.run("cache_aware", seed=1, shards=2, jobs=2, max_retries=1)

    def test_timeout_knobs_require_shards(self):
        engine = self.make_engine()
        with pytest.raises(OptionsError, match="require shards"):
            engine.run("cache_aware", task_timeout=5.0)
        with pytest.raises(OptionsError, match="require shards"):
            engine.count("cache_aware", max_retries=1)


class TestStreamTypedErrors:
    def test_worker_exception_surfaces_as_stream_worker_error(self, monkeypatch):
        engine = TriangleEngine([(1, 2), (2, 3), (1, 3)])

        def exploding_run(self, *args, **kwargs):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(TriangleEngine, "run", exploding_run)
        with watchdog(60):
            with pytest.raises(StreamWorkerError, match="cache_aware"):
                try:
                    list(engine.stream("cache_aware"))
                except StreamWorkerError as error:
                    assert isinstance(error.__cause__, RuntimeError)
                    raise

    def test_library_errors_keep_their_type(self):
        engine = TriangleEngine([(1, 2), (2, 3), (1, 3)])
        with watchdog(60):
            with pytest.raises(OptionsError):
                list(engine.stream("cache_aware", nonsense=1))
