"""Tests for the randomized cache-aware algorithm (repro.core.cache_aware)."""

import math

import pytest

from repro.analysis.bounds import expected_colour_collisions, high_degree_threshold
from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.cache_aware import (
    cache_aware_randomized,
    compute_degrees,
    enumerate_colored_triples,
    find_high_degree_vertices,
    high_degree_phase,
    partition_by_coloring,
)
from repro.core.emit import DedupCheckingSink
from repro.core.ordering import degrees_from_edges
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import barabasi_albert, clique, erdos_renyi_gnm, planted_triangles
from repro.hashing.coloring import RandomColoring


def make_machine(memory=128, block=8):
    return Machine(MachineParams(memory, block), IOStats())


class TestBuildingBlocks:
    def test_compute_degrees_matches_in_memory(self):
        edges = erdos_renyi_gnm(60, 200, seed=1).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        degree_file = compute_degrees(machine, edge_file)
        external = dict(machine.load(degree_file, 0, min(len(degree_file), 128)))
        expected = degrees_from_edges(edges)
        for vertex, degree in external.items():
            assert expected[vertex] == degree

    def test_find_high_degree_vertices_threshold(self):
        # A star graph: the hub has the top rank and a huge degree.
        hub_edges = [(i, 40) for i in range(40)]
        machine = make_machine()
        edge_file = machine.file_from_records(sorted(hub_edges))
        high = find_high_degree_vertices(machine, edge_file, threshold=10)
        assert high == [40]
        assert find_high_degree_vertices(machine, edge_file, threshold=100) == []

    def test_high_degree_phase_emits_hub_triangles_once(self):
        # Wheel-like graph: hub 20 connected to a cycle of 20 low-degree vertices.
        edges = []
        for i in range(20):
            edges.append((i, 20))
            edges.append(tuple(sorted((i, (i + 1) % 20))))
        edges = sorted(set(edges))
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        high, low_file, emitted = high_degree_phase(machine, edge_file, sink, threshold=10)
        assert high == [20]
        assert emitted == 20  # one triangle per cycle edge
        # E_l must not contain any edge incident to the hub.
        assert all(20 not in edge for edge in machine.load(low_file, 0, len(low_file)))

    def test_high_degree_phase_without_high_degree_vertices_copies_edges(self):
        edges = erdos_renyi_gnm(30, 60, seed=0).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        high, low_file, emitted = high_degree_phase(machine, edge_file, sink, threshold=10**9)
        assert high == []
        assert emitted == 0
        assert len(low_file) == len(edges)

    def test_partition_by_coloring_is_a_partition(self):
        edges = erdos_renyi_gnm(50, 200, seed=7).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        coloring = RandomColoring(3, seed=4)
        partitioned, slices, sizes = partition_by_coloring(machine, edge_file, coloring)
        assert sum(sizes.values()) == len(edges)
        seen = []
        for pair, view in slices.items():
            for u, v in view._read_range(0, len(view)):
                assert (coloring.color_of(u), coloring.color_of(v)) == pair
                seen.append((u, v))
        assert sorted(seen) == sorted(edges)

    def test_partition_slices_are_lexicographically_sorted(self):
        edges = clique(12).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        coloring = RandomColoring(2, seed=0)
        _, slices, _ = partition_by_coloring(machine, edge_file, coloring)
        for view in slices.values():
            records = view._read_range(0, len(view))
            assert records == sorted(records)

    def test_enumerate_colored_triples_covers_all_low_degree_triangles(self):
        edges = erdos_renyi_gnm(40, 160, seed=11).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        coloring = RandomColoring(3, seed=5)
        _, slices, _ = partition_by_coloring(machine, edge_file, coloring)
        sink = DedupCheckingSink()
        emitted = enumerate_colored_triples(machine, slices, coloring, sink)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert emitted == len(sink.as_set())


class TestFullAlgorithm:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_oracle_on_random_graphs(self, seed):
        graph = erdos_renyi_gnm(60, 240, seed=seed)
        edges = graph.degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=seed)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.triangles_emitted == sink.count

    def test_matches_oracle_on_clique(self):
        edges = clique(16).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=1)
        assert sink.count == math.comb(16, 3)
        assert report.triangles_emitted == math.comb(16, 3)

    def test_matches_oracle_on_skewed_graph(self):
        graph = barabasi_albert(150, 4, seed=2)
        edges = graph.degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=7)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.triangles_emitted == sink.count

    def test_hub_graph_triggers_high_degree_phase(self):
        """A hub adjacent to everything exceeds the sqrt(E*M) threshold and
        must be handled by the Lemma 1 phase, not the colour partitions."""
        graph = erdos_renyi_gnm(120, 240, seed=2)
        for vertex in range(120):
            graph.add_edge(vertex, 200)  # the hub
        edges = graph.degree_order().edges
        machine = make_machine(memory=16, block=8)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=7)
        assert sink.as_set() == set(triangles_in_memory(edges))
        # The hub's rank is the largest one (highest degree).
        assert report.high_degree_vertices
        assert report.high_degree_triangles > 0

    def test_triangle_free_graph_emits_nothing(self):
        edges = planted_triangles(0, filler_bipartite_edges=120, seed=1).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=0)
        assert report.triangles_emitted == 0

    def test_empty_graph(self):
        machine = make_machine()
        edge_file = machine.empty_file()
        report = cache_aware_randomized(machine, edge_file, DedupCheckingSink())
        assert report.triangles_emitted == 0
        assert report.num_colors == 1

    def test_report_partition_sizes_cover_low_degree_edges(self):
        graph = erdos_renyi_gnm(80, 400, seed=3)
        edges = graph.degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        report = cache_aware_randomized(machine, edge_file, DedupCheckingSink(), seed=5)
        threshold = high_degree_threshold(len(edges), machine.memory_size)
        degrees = degrees_from_edges(edges)
        low_degree_edges = [
            e for e in edges if degrees[e[0]] <= threshold and degrees[e[1]] <= threshold
        ]
        assert sum(report.partition_sizes.values()) == len(low_degree_edges)

    def test_x_xi_is_usually_below_lemma3_bound(self):
        """Lemma 3 bounds E[X_xi] by E*M; a fixed seed should land well below a
        small multiple of that bound (the statistic concentrates)."""
        graph = erdos_renyi_gnm(120, 1500, seed=4)
        edges = graph.degree_order().edges
        machine = make_machine(memory=64, block=8)
        edge_file = machine.file_from_records(edges)
        report = cache_aware_randomized(machine, edge_file, DedupCheckingSink(), seed=13)
        assert report.x_xi <= 4 * expected_colour_collisions(len(edges), machine.memory_size)

    def test_explicit_colour_override(self):
        edges = clique(12).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = cache_aware_randomized(machine, edge_file, sink, seed=2, num_colors=3)
        assert report.num_colors == 3
        assert sink.count == math.comb(12, 3)

    def test_phases_recorded(self):
        edges = erdos_renyi_gnm(50, 200, seed=6).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        cache_aware_randomized(machine, edge_file, DedupCheckingSink(), seed=0)
        assert {"high-degree", "partition", "triples"} <= set(machine.stats.phases)

    def test_input_file_not_modified(self):
        edges = clique(10).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        cache_aware_randomized(machine, edge_file, DedupCheckingSink(), seed=0)
        assert machine.load(edge_file, 0, len(edges)) == edges

    def test_disk_space_stays_linear(self):
        """Theorem 4 also claims O(E) words on disk."""
        edges = erdos_renyi_gnm(120, 2000, seed=8).degree_order().edges
        machine = make_machine(memory=128, block=16)
        edge_file = machine.file_from_records(edges)
        cache_aware_randomized(machine, edge_file, DedupCheckingSink(), seed=3)
        assert machine.disk.peak_words <= 8 * len(edges)
