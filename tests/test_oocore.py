"""Unit and capability tests of the out-of-core memmap backend.

The differential harness (``tests/test_differential.py``) already pins
``oocore_count`` / ``oocore_enum`` against the full registry; this module
covers the machinery underneath: :func:`~repro.fastpath.oocore.build_store`
input forms and chunk-size invariance, bit-identical agreement with the
in-memory canonicaliser, spill lifecycle (close, finalizer backstop, error
paths), options validation, the on-disk colour partitioner against the
sharder's in-memory one, and memmap-backed shard execution end to end.
"""

from __future__ import annotations

import gc
import pickle

import pytest

from repro.core.baselines.in_memory import triangle_set
from repro.exceptions import FastPathUnavailableError, GraphFormatError, OptionsError
from repro.experiments.workloads import sparse_random
from repro.fastpath import oocore
from repro.fastpath.oocore import (
    DEFAULT_CHUNK_ROWS,
    OocoreOptions,
    build_store,
    color_partition,
    count_triangles_store,
    iter_triangle_chunks_store,
)
from repro.poolexec.segments import MemmapSlice, memmap_slice_edges, resolve_edges

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - bare-interpreter leg
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def canonical_edges(num_edges: int = 200, seed: int = 3) -> list[tuple[int, int]]:
    return sparse_random(num_edges, seed=seed).edges


@requires_numpy
class TestBuildStore:
    def test_input_forms_agree(self, tmp_path):
        """ndarray, iterable of pairs and a stream of array chunks coincide."""
        edges = canonical_edges()
        array = np.asarray(edges, dtype=np.int64)
        chunk_stream = (array[lo : lo + 37] for lo in range(0, len(edges), 37))
        stores = [
            build_store(array, spill_dir=str(tmp_path / "a")),
            build_store(edges, spill_dir=str(tmp_path / "b")),
            build_store(chunk_stream, spill_dir=str(tmp_path / "c")),
        ]
        try:
            reference = np.asarray(stores[0].edges)
            for store in stores[1:]:
                assert np.array_equal(np.asarray(store.edges), reference)
                assert store.num_edges == stores[0].num_edges
                assert store.num_vertices == stores[0].num_vertices
        finally:
            for store in stores:
                store.close()

    @pytest.mark.parametrize("chunk_rows", [17, 4096, DEFAULT_CHUNK_ROWS])
    def test_bit_identical_to_in_memory_canonicaliser(self, tmp_path, chunk_rows):
        """Every chunking reproduces ``canonicalize_edge_array`` exactly.

        Including duplicate and reversed input edges, which the external
        merge must collapse just like the in-memory unique pass.
        """
        from repro.fastpath.arrays import canonicalize_edge_array

        edges = canonical_edges(300, seed=5)
        noisy = edges + [(v, u) for (u, v) in edges[::3]] + edges[::7]
        expected = canonicalize_edge_array(noisy)
        with build_store(noisy, spill_dir=str(tmp_path), chunk_rows=chunk_rows) as store:
            assert np.array_equal(np.asarray(store.edges), np.asarray(expected.edges))
            assert np.array_equal(np.asarray(store.vertex_of), np.asarray(expected.vertex_of))
            assert count_triangles_store(store) == len(triangle_set(edges))

    def test_empty_graph(self, tmp_path):
        with build_store([], spill_dir=str(tmp_path)) as store:
            assert store.num_edges == 0
            assert store.num_vertices == 0
            assert count_triangles_store(store) == 0
            assert list(iter_triangle_chunks_store(store)) == []
        assert not list(tmp_path.rglob("*.mmap"))

    @pytest.mark.parametrize(
        ("bad_edges", "match"),
        [
            ([(0, 1), (-3, 2)], "non-negative"),
            ([(0, 1), (2, 2)], "self-loop"),
        ],
    )
    def test_format_errors_clean_up_spill(self, tmp_path, bad_edges, match):
        """A rejected input raises *and* leaves no spill directory behind."""
        with pytest.raises(GraphFormatError, match=match):
            build_store(bad_edges, spill_dir=str(tmp_path))
        assert not any(tmp_path.iterdir()), "failed build leaked spill files"

    def test_close_is_idempotent_and_removes_spill(self, tmp_path):
        store = build_store(canonical_edges(), spill_dir=str(tmp_path))
        root = store.spill_root
        assert list(tmp_path.rglob("*.mmap"))
        store.close()
        store.close()
        assert store.closed
        assert not list(tmp_path.rglob("*.mmap"))
        assert not any(tmp_path.iterdir()), root

    def test_finalizer_backstop_removes_abandoned_spill(self, tmp_path):
        """An un-closed store's spill is reclaimed at garbage collection."""
        store = build_store(canonical_edges(60, seed=1), spill_dir=str(tmp_path))
        assert list(tmp_path.rglob("*.mmap"))
        del store
        gc.collect()
        assert not list(tmp_path.rglob("*.mmap"))

    def test_release_pages_keeps_store_usable(self, tmp_path):
        """Dropping resident pages is transparent: kernels refault and agree."""
        edges = canonical_edges()
        with build_store(edges, spill_dir=str(tmp_path)) as store:
            before = count_triangles_store(store)
            store.release_pages()
            assert count_triangles_store(store) == before == len(triangle_set(edges))


@requires_numpy
class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_rows": 0},
            {"chunk_rows": True},
            {"chunk_rows": "many"},
            {"dtype": "bogus"},
            {"spill_dir": 5},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(OptionsError):
            OocoreOptions(**kwargs).validate()

    def test_defaults_validate(self):
        OocoreOptions().validate()
        OocoreOptions(spill_dir="/tmp", chunk_rows=8, dtype="int64").validate()


@requires_numpy
class TestColorPartition:
    def test_matches_in_memory_sharder(self, tmp_path):
        """On-disk classes equal the sharder's, edge for edge, in order."""
        from repro.core.sharding import _decomposition_coloring, _partition_by_color_pairs

        edges = canonical_edges(400, seed=11)
        coloring = _decomposition_coloring(4, seed=11)
        expected = _partition_by_color_pairs(edges, coloring)
        with build_store(edges, spill_dir=str(tmp_path), chunk_rows=53) as store:
            classes = color_partition(store, coloring)
            assert set(classes) == {pair for pair, records in expected.items() if records}
            for pair, slice_ in classes.items():
                assert len(slice_) == len(expected[pair])
                assert resolve_edges(slice_) == expected[pair]

    def test_memmap_slice_pickles_and_resolves(self, tmp_path):
        """The shard payload survives pickling and resolves via stdlib only."""
        edges = canonical_edges(80, seed=2)
        from repro.core.sharding import _decomposition_coloring

        coloring = _decomposition_coloring(2, seed=0)
        with build_store(edges, spill_dir=str(tmp_path)) as store:
            classes = color_partition(store, coloring)
            pair, slice_ = next(iter(sorted(classes.items())))
            clone = pickle.loads(pickle.dumps(slice_))
            assert clone == slice_
            assert memmap_slice_edges(clone) == resolve_edges(slice_)

    def test_sharded_execution_over_memmap_parts(self, tmp_path):
        """A full subgraph-shard run fed by MemmapSlice parts sums correctly."""
        from repro.core.sharding import (
            SubgraphShardTask,
            _decomposition_coloring,
            _execute_subgraph_shard,
            _iter_subgraph_shards,
        )

        edges = canonical_edges(150, seed=7)
        num_colors, seed = 3, 7
        coloring = _decomposition_coloring(num_colors, seed)
        with build_store(edges, spill_dir=str(tmp_path)) as store:
            classes = color_partition(store, coloring)
            total = 0
            for index, (triple, keys) in enumerate(_iter_subgraph_shards(classes, num_colors)):
                task = SubgraphShardTask(
                    index=index,
                    triple=triple,
                    parts=tuple(classes[key] for key in keys),
                    algorithm="cache_aware",
                    options={},
                    seed=seed,
                    num_colors=num_colors,
                    memory=256,
                    block=16,
                    collect=False,
                )
                outcome = _execute_subgraph_shard(task)
                assert outcome.error is None
                total += outcome.count
            assert total == len(triangle_set(edges))


class TestWithoutNumpy:
    """Behaviour on a bare interpreter (real or simulated)."""

    def test_build_store_raises_fastpath_unavailable(self, monkeypatch):
        import repro.fastpath.arrays as arrays

        monkeypatch.setattr(arrays, "HAVE_NUMPY", False)
        with pytest.raises(FastPathUnavailableError, match="out-of-core"):
            build_store([(0, 1)])

    def test_memmap_slice_rejects_unknown_dtype(self, tmp_path):
        path = tmp_path / "edges.mmap"
        path.write_bytes(b"\x00" * 16)
        bad = MemmapSlice(path=str(path), dtype="float64", start=0, stop=1)
        with pytest.raises(ValueError, match="dtype"):
            memmap_slice_edges(bad)

    def test_oocore_module_importable(self):
        """The module (and its registry entries) never require NumPy to load."""
        assert oocore.SPILL_SUFFIX == ".mmap"
