"""Tests for the colour-sharded execution path (repro.core.sharding).

The contract under test, per execution mode:

* ``triples`` (cache_aware, deterministic): a sharded run *is* the serial
  run with its high-degree and colour-triple phases distributed --
  aggregated counters, phase attribution, triangle list (including order)
  and disk peak are bit-identical to the serial run with
  ``num_colors=shards``, for any job count and any shard completion order.
* ``subgraph`` (every other machine algorithm): the triangle set is
  identical to the serial run (each triangle emitted by exactly one shard,
  enforced through a DedupCheckingSink), aggregated counters are
  deterministic across job counts and repetitions, and ``shards=1``
  degenerates to the bit-identical serial instance.

Process-pool tests are kept to a handful: a spawn pool costs ~0.5 s on CI,
and jobs=1 exercises the identical merge path in-process.
"""

import math
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.model import MachineParams
from repro.core.emit import DedupCheckingSink
from repro.core.engine import TriangleEngine
from repro.core.registry import MAX_SHARDS, ShardingOptions, get_algorithm
from repro.core.sharding import ShardingStats
from repro.exceptions import OptionsError
from repro.graph.generators import clique, erdos_renyi_gnm, planted_triangles

SMALL_PARAMS = MachineParams(memory_words=64, block_words=8)

#: Machine-kind algorithms that shard through the generic subgraph mode.
SUBGRAPH_ALGORITHMS = ["hu_tao_chung", "dementiev", "bnlj"]


def make_engine(graph_seed: int = 3, edges: int = 240) -> TriangleEngine:
    graph = erdos_renyi_gnm(max(30, edges // 4), edges, seed=graph_seed)
    return TriangleEngine(graph, params=SMALL_PARAMS)


def triangle_set(result):
    return {tuple(sorted(t)) for t in result.triangles}


class TestTriplesModeParity:
    """cache_aware: sharded == serial, bit for bit."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("graph_seed", [3, 5])
    def test_sharded_run_is_bit_identical_to_serial(self, shards, graph_seed):
        engine = make_engine(graph_seed)
        serial = engine.run("cache_aware", seed=1, options={"num_colors": shards}, collect=True)
        sharded = engine.run("cache_aware", seed=1, shards=shards, collect=True)
        assert sharded.io == serial.io
        assert sharded.phases == serial.phases
        assert sharded.triangle_count == serial.triangle_count
        # The merge re-emits in triple order, so even the *order* matches.
        assert sharded.triangles == serial.triangles
        assert sharded.disk_peak_words == serial.disk_peak_words

    def test_count_only_fast_path_matches(self):
        engine = make_engine()
        serial = engine.run("cache_aware", seed=1, options={"num_colors": 2})
        sharded = engine.run("cache_aware", seed=1, shards=2)
        assert sharded.io == serial.io
        assert sharded.triangle_count == serial.triangle_count
        assert sharded.triangles is None

    def test_report_is_the_algorithm_report(self):
        engine = make_engine()
        serial = engine.run("cache_aware", seed=1, options={"num_colors": 2})
        sharded = engine.run("cache_aware", seed=1, shards=2)
        assert sharded.report.num_colors == 2
        assert sharded.report.x_xi == serial.report.x_xi
        assert sharded.report.low_degree_triangles == serial.report.low_degree_triangles
        assert sharded.report.high_degree_triangles == serial.report.high_degree_triangles

    def test_sharding_metadata_populated(self):
        engine = make_engine()
        result = engine.run("cache_aware", seed=1, shards=2)
        meta = result.sharding
        assert isinstance(meta, ShardingStats)
        assert meta.mode == "triples"
        assert meta.num_colors == 2
        assert meta.num_shards == len(meta.shard_seconds) == len(meta.shard_triples)
        assert engine.run("cache_aware", seed=1).sharding is None

    def test_clique_triangles_survive_sharding(self):
        engine = TriangleEngine(clique(12), params=SMALL_PARAMS)
        serial = engine.run("cache_aware", seed=1, options={"num_colors": 2}, collect=True)
        sharded = engine.run("cache_aware", seed=1, shards=2, collect=True)
        assert serial.triangle_count == math.comb(12, 3)
        assert sharded.triangles == serial.triangles
        assert sharded.io == serial.io

    def test_high_degree_triangles_survive_sharding(self):
        # Two hubs joined to every leaf (and to each other) cross the
        # sqrt(E*M) degree threshold, exercising the distributed Lemma 1
        # high-degree phase -- including the processed-prefix exclusion
        # that keeps each hub-hub-leaf triangle unique.
        leaves = list(range(2, 151))
        edges = [(0, 1)] + [(0, leaf) for leaf in leaves] + [(1, leaf) for leaf in leaves]
        engine = TriangleEngine(edges, params=SMALL_PARAMS)
        serial = engine.run("cache_aware", seed=1, options={"num_colors": 2}, collect=True)
        sharded = engine.run("cache_aware", seed=1, shards=2, collect=True)
        assert len(serial.report.high_degree_vertices) == 2  # the premise
        assert serial.triangle_count == len(leaves)
        assert sharded.triangles == serial.triangles
        assert sharded.io == serial.io
        # One per-vertex task per high-degree vertex, timed separately from
        # the colour-triple shards.
        assert sharded.sharding.hd_tasks == len(sharded.report.high_degree_vertices) > 0
        assert len(sharded.sharding.hd_seconds) == sharded.sharding.hd_tasks

    @pytest.mark.parametrize("shards", [1, 2])
    def test_deterministic_sharded_is_bit_identical_to_serial(self, shards):
        # The deterministic algorithm shards through the same triples-mode
        # executors (its greedy colouring stays on the coordinator), so its
        # sharded counters reproduce the serial run with the same colour
        # count bit for bit.
        engine = make_engine()
        serial = engine.run("deterministic", options={"num_colors": shards}, collect=True)
        sharded = engine.run("deterministic", shards=shards, collect=True)
        assert sharded.io == serial.io
        assert sharded.phases == serial.phases
        assert sharded.triangles == serial.triangles
        assert sharded.disk_peak_words == serial.disk_peak_words
        assert sharded.sharding.mode == "triples"


class TestSubgraphModeParity:
    """Generic machine algorithms: identical triangle sets, exactly once."""

    @pytest.mark.parametrize("algorithm", SUBGRAPH_ALGORITHMS)
    def test_triangle_set_matches_serial(self, algorithm):
        engine = make_engine()
        serial = engine.run(algorithm, collect=True)
        sharded = engine.run(algorithm, shards=2, collect=True)
        assert triangle_set(sharded) == triangle_set(serial)
        assert sharded.triangle_count == serial.triangle_count

    @pytest.mark.parametrize("algorithm", SUBGRAPH_ALGORITHMS)
    def test_single_shard_is_the_serial_instance(self, algorithm):
        engine = make_engine()
        serial = engine.run(algorithm, collect=True)
        sharded = engine.run(algorithm, shards=1, collect=True)
        assert sharded.io == serial.io
        assert sharded.triangles == serial.triangles

    def test_each_triangle_emitted_exactly_once_across_shards(self):
        engine = TriangleEngine(
            planted_triangles(25, filler_bipartite_edges=120, seed=9), params=SMALL_PARAMS
        )
        checker = DedupCheckingSink()  # raises on any double emission
        result = engine.run("hu_tao_chung", shards=4, sink=checker)
        assert result.triangle_count == 25
        assert checker.count == 25

    def test_subgraph_report_carries_shard_stats(self):
        engine = make_engine()
        result = engine.run("hu_tao_chung", shards=2)
        assert result.sharding.mode == "subgraph"
        assert result.sharding.num_shards == result.report.num_shards
        assert result.sharding.num_colors == 2


class TestShardedAndSerialAgree:
    """The satellite property test: random graphs x shards x jobs.

    ``jobs`` only changes *where* shards execute, never what they compute:
    the in-process path (jobs=1) and the merge of pool outcomes share the
    same deterministic reassembly, so the property runs the cheap jobs=1
    grid under hypothesis and a separate class covers real pools.
    """

    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        graph_seed=st.integers(min_value=0, max_value=10_000),
        shards=st.sampled_from([1, 2, 4]),
    )
    def test_property_sharded_equals_serial(self, graph_seed, shards):
        engine = make_engine(graph_seed, edges=150)
        serial = engine.run("cache_aware", seed=1, options={"num_colors": shards}, collect=True)
        sharded = engine.run("cache_aware", seed=1, shards=shards, collect=True)
        assert sharded.io == serial.io
        assert sharded.triangles == serial.triangles
        generic_serial = engine.run("hu_tao_chung", collect=True)
        generic = engine.run("hu_tao_chung", shards=shards, collect=True)
        assert triangle_set(generic) == triangle_set(generic_serial)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_repeated_runs_are_bit_identical(self, shards):
        engine = make_engine()
        first = engine.run("cache_aware", seed=1, shards=shards, collect=True)
        second = engine.run("cache_aware", seed=1, shards=shards, collect=True)
        assert first.io == second.io
        assert first.triangles == second.triangles
        assert first.phases == second.phases


class TestProcessPool:
    """Spawn-pool execution: same results regardless of jobs or finish order."""

    def test_triples_mode_jobs_invariant(self):
        engine = make_engine()
        inline = engine.run("cache_aware", seed=1, shards=2, jobs=1, collect=True)
        pooled = engine.run("cache_aware", seed=1, shards=2, jobs=4, collect=True)
        assert pooled.io == inline.io
        assert pooled.phases == inline.phases
        assert pooled.triangles == inline.triangles
        assert pooled.sharding.jobs == 4

    def test_subgraph_mode_jobs_invariant(self):
        engine = make_engine()
        inline = engine.run("dementiev", shards=2, jobs=1, collect=True)
        pooled = engine.run("dementiev", shards=2, jobs=4, collect=True)
        assert pooled.io == inline.io
        assert pooled.triangles == inline.triangles

    def test_engine_count_with_sharding(self):
        engine = TriangleEngine(clique(10), params=SMALL_PARAMS)
        assert engine.count("cache_aware", seed=1, shards=2, jobs=2) == math.comb(10, 3)


class TestValidation:
    """ShardingOptions and spec-level gating."""

    @pytest.mark.parametrize("algorithm", ["cache_oblivious", "in_memory"])
    def test_non_machine_algorithms_reject_sharding(self, algorithm):
        engine = make_engine()
        with pytest.raises(OptionsError, match="substrate"):
            engine.run(algorithm, shards=2)

    def test_jobs_without_shards_rejected(self):
        engine = make_engine()
        with pytest.raises(OptionsError, match="requires shards"):
            engine.run("cache_aware", jobs=4)

    @pytest.mark.parametrize("shards", [0, -1, True, 2.5, MAX_SHARDS + 1])
    def test_bad_shard_counts_rejected(self, shards):
        engine = make_engine()
        with pytest.raises(OptionsError):
            engine.run("cache_aware", shards=shards)

    def test_conflicting_num_colors_rejected(self):
        engine = make_engine()
        with pytest.raises(OptionsError, match="num_colors"):
            engine.run("cache_aware", shards=2, num_colors=3)
        # An *agreeing* num_colors is fine.
        result = engine.run("cache_aware", shards=2, num_colors=2)
        assert result.report.num_colors == 2

    def test_resolve_sharding_returns_none_for_serial(self):
        spec = get_algorithm("cache_aware")
        assert spec.resolve_sharding(None, 1) is None
        resolved = spec.resolve_sharding(4, 2)
        assert resolved == ShardingOptions(shards=4, jobs=2)

    def test_options_validate_directly(self):
        ShardingOptions(shards=2, jobs=2).validate()
        with pytest.raises(OptionsError):
            ShardingOptions(shards=2, jobs=0).validate()


class TestStreamTeardown:
    """Regression: abandoning a stream must kill the worker thread, bounded.

    A slow consumer-side close used to be able to race the drain loop (the
    queue refilling between ``get_nowait`` and ``join``) and the final
    ``done`` put was not stop-aware.  The worker below emits one triangle
    at a time with an artificial delay, so it is mid-emission with a full
    queue when the consumer walks away.
    """

    def _stream_threads(self):
        return [t for t in threading.enumerate() if t.name == "triangle-stream"]

    def test_close_mid_stream_under_slow_worker_kills_thread(self):
        from repro.core.registry import register_algorithm, unregister_algorithm

        @register_algorithm(
            "slow_emitter_test",
            summary="test-only slow emitter",
            section="-",
            io_bound="-",
            substrate="in-memory",
            accepts_seed=False,
        )
        def _slow(context, sink, options):
            for i in range(500):
                time.sleep(0.002)
                sink.emit(3 * i, 3 * i + 1, 3 * i + 2)

        try:
            engine = TriangleEngine(clique(4), params=SMALL_PARAMS)
            stream = engine.stream("slow_emitter_test", batch_size=1)
            assert len(next(stream)) == 1
            started = time.perf_counter()
            stream.close()  # worker is mid-emission with a full queue
            closed_in = time.perf_counter() - started
            assert closed_in < 5.0, f"stream.close() took {closed_in:.1f}s"
            deadline = time.monotonic() + 5.0
            while self._stream_threads() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not self._stream_threads(), "stream worker thread outlived its consumer"
        finally:
            unregister_algorithm("slow_emitter_test")
