"""Tests for the AGHP small-bias family (repro.hashing.small_bias)."""

import itertools
from collections import Counter

import pytest

from repro.hashing.small_bias import SmallBiasFamily


class TestConstruction:
    def test_family_size(self):
        family = SmallBiasFamily(degree=3)
        assert family.size == 64
        assert len(list(family.functions())) == 64

    def test_function_indexing_matches_iteration(self):
        family = SmallBiasFamily(degree=2)
        from_iteration = [(f.x, f.y) for f in family.functions()]
        from_indexing = [(family.function(i).x, family.function(i).y) for i in range(family.size)]
        assert from_iteration == from_indexing

    def test_function_index_out_of_range(self):
        family = SmallBiasFamily(degree=2)
        with pytest.raises(IndexError):
            family.function(family.size)
        with pytest.raises(IndexError):
            family.function(-1)

    def test_bits_are_binary(self):
        family = SmallBiasFamily(degree=3)
        function = family.function(17)
        assert all(function(position) in (0, 1) for position in range(50))

    def test_negative_position_rejected(self):
        function = SmallBiasFamily(degree=2).function(5)
        with pytest.raises(ValueError):
            function(-1)

    def test_with_size_at_most(self):
        assert SmallBiasFamily.with_size_at_most(16).size == 16
        assert SmallBiasFamily.with_size_at_most(300).size == 256
        assert SmallBiasFamily.with_size_at_most(1024).size == 1024
        with pytest.raises(ValueError):
            SmallBiasFamily.with_size_at_most(4)

    def test_for_universe_picks_reasonable_degree(self):
        family = SmallBiasFamily.for_universe(universe_size=1000, alpha=0.5)
        assert family.size >= 16
        with pytest.raises(ValueError):
            SmallBiasFamily.for_universe(0, 0.5)
        with pytest.raises(ValueError):
            SmallBiasFamily.for_universe(10, 0.0)

    def test_bias_bound_formula(self):
        family = SmallBiasFamily(degree=4)
        assert family.bias(positions=4) == pytest.approx(4 / 16)


class TestSmallBiasProperty:
    def test_single_position_bits_are_nearly_balanced(self):
        """Over the whole family, each position is 0/1 nearly half the time."""
        family = SmallBiasFamily(degree=4)
        for position in (0, 3, 11):
            ones = sum(f(position) for f in family.functions())
            # Exactly half would be family.size / 2; allow the epsilon-bias slack.
            assert abs(ones - family.size / 2) <= family.size * 0.26

    def test_pair_parities_are_nearly_balanced(self):
        """Parities over two positions are close to uniform across the family."""
        family = SmallBiasFamily(degree=4)
        for first, second in [(0, 1), (2, 9)]:
            parity_ones = sum(f(first) ^ f(second) for f in family.functions())
            assert abs(parity_ones - family.size / 2) <= family.size * 0.26

    def test_four_bit_patterns_are_roughly_uniform(self):
        """Lemma 6's guarantee: every 4-position pattern appears ~2^-4 of the time."""
        family = SmallBiasFamily(degree=5)
        positions = (1, 4, 7, 13)
        counts = Counter(
            tuple(f(p) for p in positions) for f in family.functions()
        )
        expected = family.size / 16
        for pattern in itertools.product((0, 1), repeat=4):
            assert counts.get(pattern, 0) <= 2.2 * expected

    def test_functions_are_deterministic(self):
        family = SmallBiasFamily(degree=3)
        f = family.function(9)
        again = family.function(9)
        assert [f(p) for p in range(30)] == [again(p) for p in range(30)]
