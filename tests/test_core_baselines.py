"""Tests for the baseline algorithms (repro.core.baselines)."""

import math

import pytest

from repro.analysis.model import MachineParams
from repro.core.baselines.bnlj import block_nested_loop_join
from repro.core.baselines.dementiev import dementiev_sort_based
from repro.core.baselines.hu_tao_chung import hu_tao_chung
from repro.core.baselines.in_memory import (
    count_triangles_in_memory,
    triangle_set,
    triangles_in_memory,
)
from repro.core.emit import CollectingSink, DedupCheckingSink
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import clique, complete_bipartite, erdos_renyi_gnm, path_graph


def make_machine(memory=128, block=8):
    return Machine(MachineParams(memory, block), IOStats())


EXTERNAL_BASELINES = [hu_tao_chung, block_nested_loop_join, dementiev_sort_based]


class TestInMemoryOracle:
    def test_triangle_of_a_triangle(self):
        assert triangles_in_memory([(0, 1), (0, 2), (1, 2)]) == [(0, 1, 2)]

    def test_counts_on_known_graphs(self):
        assert count_triangles_in_memory(clique(7).degree_order().edges) == math.comb(7, 3)
        assert count_triangles_in_memory(path_graph(20).degree_order().edges) == 0
        assert count_triangles_in_memory(complete_bipartite(4, 5).degree_order().edges) == 0

    def test_each_triangle_reported_once(self):
        edges = clique(10).degree_order().edges
        triangles = triangles_in_memory(edges)
        assert len(triangles) == len(set(triangles)) == math.comb(10, 3)

    def test_forwards_to_sink(self):
        sink = CollectingSink()
        triangles_in_memory([(0, 1), (0, 2), (1, 2)], sink)
        assert sink.as_set() == {(0, 1, 2)}

    def test_unoriented_edges_accepted(self):
        assert triangle_set([(1, 0), (2, 0), (2, 1)]) == {(0, 1, 2)}


class TestExternalBaselines:
    @pytest.mark.parametrize("baseline", EXTERNAL_BASELINES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_oracle_on_random_graphs(self, baseline, seed):
        edges = erdos_renyi_gnm(50, 200, seed=seed).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = baseline(machine, edge_file, sink)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.triangles_emitted == sink.count
        assert report.num_edges == len(edges)

    @pytest.mark.parametrize("baseline", EXTERNAL_BASELINES)
    def test_matches_oracle_on_clique(self, baseline):
        edges = clique(13).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        baseline(machine, edge_file, sink)
        assert sink.count == math.comb(13, 3)

    @pytest.mark.parametrize("baseline", EXTERNAL_BASELINES)
    def test_empty_input(self, baseline):
        machine = make_machine()
        report = baseline(machine, machine.empty_file(), DedupCheckingSink())
        assert report.triangles_emitted == 0

    @pytest.mark.parametrize("baseline", EXTERNAL_BASELINES)
    def test_triangle_free_graph(self, baseline):
        edges = complete_bipartite(8, 8).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        report = baseline(machine, edge_file, DedupCheckingSink())
        assert report.triangles_emitted == 0

    @pytest.mark.parametrize("baseline", EXTERNAL_BASELINES)
    def test_input_file_preserved(self, baseline):
        edges = clique(9).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        baseline(machine, edge_file, DedupCheckingSink())
        assert machine.load(edge_file, 0, len(edges)) == edges


class TestBaselineIOSeparation:
    def test_hu_tao_chung_beats_bnlj(self):
        """The paper's ordering of the baselines: E^2/(MB) << E^3/(M^2 B)."""
        edges = erdos_renyi_gnm(120, 2000, seed=4).degree_order().edges
        ios = {}
        for baseline in (hu_tao_chung, block_nested_loop_join):
            machine = make_machine(memory=64, block=8)
            edge_file = machine.file_from_records(edges)
            baseline(machine, edge_file, DedupCheckingSink())
            ios[baseline.__name__] = machine.stats.total
        assert ios["hu_tao_chung"] * 3 < ios["block_nested_loop_join"]

    def test_hu_tao_chung_io_scales_inversely_with_memory(self):
        edges = erdos_renyi_gnm(150, 3000, seed=5).degree_order().edges
        totals = {}
        for memory in (64, 256):
            machine = Machine(MachineParams(memory, 8), IOStats())
            edge_file = machine.file_from_records(edges)
            hu_tao_chung(machine, edge_file, DedupCheckingSink())
            totals[memory] = machine.stats.total
        assert totals[64] >= 2.5 * totals[256]

    def test_dementiev_io_insensitive_to_memory(self):
        """Dementiev's bound only depends on M through a log factor."""
        edges = erdos_renyi_gnm(150, 3000, seed=6).degree_order().edges
        totals = {}
        for memory in (64, 512):
            machine = Machine(MachineParams(memory, 8), IOStats())
            edge_file = machine.file_from_records(edges)
            dementiev_sort_based(machine, edge_file, DedupCheckingSink())
            totals[memory] = machine.stats.total
        assert totals[64] <= 3 * totals[512]
