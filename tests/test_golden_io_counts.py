"""Golden I/O-count regression tests for the block-granular data path.

The simulated (M, B) machine is the measuring instrument of this
reproduction: every theorem is checked against its ``reads``/``writes``
(and the work bound against ``operations``).  Performance work on the
substrate -- batching the data path, rewriting the merge, bulk colour
lookups -- must therefore never move the counters.  These tests pin the
*exact* counter triples for every external-memory algorithm on fixed seeded
graphs, together with the emitted triangle sets, so any refactor that
changes the simulated cost model (rather than just the wall-clock cost of
simulating it) fails loudly.

The pinned values were recorded after the block-granular refactor, which
also made the ``high_degree_phase`` copy branch charge one operation per
copied edge (previously scanned for free); `reads`/`writes` are unchanged
from the record-at-a-time implementation.

If an *intentional* model change lands (e.g. a new charging rule), rerun
the algorithms and update the table in the same commit, explaining why.
"""

import pytest

from repro.analysis.model import MachineParams
from repro.core.api import enumerate_triangles
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.engine import TriangleEngine
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm, planted_triangles

PARAMS = MachineParams(256, 16)
SEED = 4

ALGORITHMS = [
    "cache_aware",
    "deterministic",
    "cache_oblivious",
    "hu_tao_chung",
    "dementiev",
    "bnlj",
]


def _graphs():
    return {
        "gnm": erdos_renyi_gnm(120, 400, seed=11),
        "skewed": barabasi_albert(100, 5, seed=3),
        "planted": planted_triangles(25, filler_bipartite_edges=120, seed=9),
    }


#: (graph, algorithm) -> exact (reads, writes, operations).
GOLDEN_COUNTS: dict[tuple[str, str], tuple[int, int, int]] = {
    ("gnm", "cache_aware"): (543, 233, 9378),
    ("gnm", "deterministic"): (603, 233, 112178),
    ("gnm", "cache_oblivious"): (6719, 4786, 1020124),
    ("gnm", "hu_tao_chung"): (200, 0, 4058),
    ("gnm", "dementiev"): (167, 117, 2860),
    ("gnm", "bnlj"): (2819, 0, 44096),
    ("skewed", "cache_aware"): (737, 283, 13111),
    ("skewed", "deterministic"): (717, 283, 136665),
    ("skewed", "cache_oblivious"): (8835, 6037, 960384),
    ("skewed", "hu_tao_chung"): (279, 0, 6100),
    ("skewed", "dementiev"): (254, 192, 4577),
    ("skewed", "bnlj"): (4919, 0, 84330),
    ("planted", "cache_aware"): (199, 108, 3147),
    ("planted", "deterministic"): (199, 108, 3147),
    ("planted", "cache_oblivious"): (1468, 1028, 225659),
    ("planted", "hu_tao_chung"): (65, 0, 1100),
    ("planted", "dementiev"): (134, 108, 2455),
    ("planted", "bnlj"): (409, 0, 5290),
}

#: graph -> expected triangle count (sanity anchor for the set comparison).
GOLDEN_TRIANGLES = {"gnm": 58, "skewed": 366, "planted": 25}


@pytest.fixture(scope="module")
def graphs():
    return _graphs()


@pytest.fixture(scope="module")
def oracle_triangles(graphs):
    oracles = {}
    for name, graph in graphs.items():
        order = graph.degree_order()
        ranked = {tuple(sorted(t)) for t in triangles_in_memory(order.edges)}
        oracles[name] = {tuple(sorted(order.to_labels(t))) for t in ranked}
    return oracles


#: algorithm -> exact (reads, writes, operations) of a sharded run on the
#: "gnm" graph with ``shards=2, jobs=2`` (identical for any job count by
#: construction; the test runs jobs=2 to cross the worker-pool boundary).
#: ``cache_aware`` and ``deterministic`` distribute their own high-degree
#: and colour-triple phases (sharding mode ``triples``), so their sharded
#: counters equal the serial golden triples above (the serial colour count
#: on "gnm" is already 2); the subgraph-mode algorithms measure the
#: decomposed instances and pin their own values.  ``deterministic`` moved
#: from the subgraph values (1875, 883, 180411) to the serial triple when
#: it gained triples-mode execution.
SHARDED_SHARDS = 2
SHARDED_JOBS = 2
GOLDEN_SHARDED_COUNTS: dict[str, tuple[int, int, int]] = {
    "cache_aware": (543, 233, 9378),
    "deterministic": (603, 233, 112178),
    "hu_tao_chung": (506, 0, 10024),
    "dementiev": (536, 328, 8524),
    "bnlj": (4777, 0, 68211),
}


@pytest.fixture(scope="module")
def gnm_engine(graphs):
    """One shared engine over the "gnm" graph for every sharded golden run."""
    return TriangleEngine(graphs["gnm"], params=PARAMS)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_SHARDED_COUNTS))
def test_golden_sharded_io_counts(gnm_engine, oracle_triangles, algorithm):
    """Shard-merge regressions are pinned exactly like serial I/O counts."""
    result = gnm_engine.run(
        algorithm,
        seed=SEED,
        collect=True,
        shards=SHARDED_SHARDS,
        jobs=SHARDED_JOBS,
    )
    expected = GOLDEN_SHARDED_COUNTS[algorithm]
    actual = (result.io.reads, result.io.writes, result.io.operations)
    assert actual == expected, (
        f"sharded {algorithm} (shards={SHARDED_SHARDS}, jobs={SHARDED_JOBS}): counters "
        f"moved from {expected} to {actual}; the shard decomposition or merge changed"
    )
    assert result.triangle_count == GOLDEN_TRIANGLES["gnm"]
    emitted = {tuple(sorted(t)) for t in result.triangles}
    assert emitted == oracle_triangles["gnm"]


def test_sharded_cache_aware_matches_serial_golden():
    """Triples-mode sharding must keep the *serial* counters bit for bit."""
    assert GOLDEN_SHARDED_COUNTS["cache_aware"] == GOLDEN_COUNTS[("gnm", "cache_aware")]


@pytest.mark.parametrize("graph_name", sorted({g for g, _ in GOLDEN_COUNTS}))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_golden_io_counts(graphs, oracle_triangles, graph_name, algorithm):
    result = enumerate_triangles(
        graphs[graph_name], algorithm=algorithm, params=PARAMS, seed=SEED
    )
    expected = GOLDEN_COUNTS[(graph_name, algorithm)]
    actual = (result.io.reads, result.io.writes, result.io.operations)
    assert actual == expected, (
        f"{algorithm} on {graph_name}: counters moved from {expected} to {actual}; "
        "the refactor changed the simulated I/O model, not just its speed"
    )
    # The emitted triangles must be exactly the oracle's, each exactly once.
    assert result.triangle_count == GOLDEN_TRIANGLES[graph_name]
    assert result.triangles is not None
    assert len(result.triangles) == result.triangle_count
    emitted = {tuple(sorted(t)) for t in result.triangles}
    assert emitted == oracle_triangles[graph_name]
