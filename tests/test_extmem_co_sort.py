"""Tests for cache-oblivious sorting (repro.extmem.co_sort)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.model import MachineParams
from repro.extmem.co_sort import cache_oblivious_sort, is_sorted, sorted_copy
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats


def make_vm(memory=64, block=8) -> ObliviousVM:
    return ObliviousVM(MachineParams(memory, block), IOStats())


class TestCorrectness:
    def test_sorts_random_data(self):
        vm = make_vm()
        data = [random.Random(3).randrange(1000) for _ in range(500)]
        vector = vm.input_vector(data)
        cache_oblivious_sort(vm, vector)
        assert vector.to_list() == sorted(data)

    def test_sorts_with_key(self):
        vm = make_vm()
        data = [(i % 7, i) for i in range(100)]
        vector = vm.input_vector(data)
        cache_oblivious_sort(vm, vector, key=lambda record: record[0])
        assert [k for k, _ in vector.to_list()] == sorted(k for k, _ in data)

    def test_empty_and_singleton(self):
        vm = make_vm()
        empty = vm.input_vector([])
        cache_oblivious_sort(vm, empty)
        assert empty.to_list() == []
        single = vm.input_vector([42])
        cache_oblivious_sort(vm, single)
        assert single.to_list() == [42]

    def test_already_sorted_input(self):
        vm = make_vm()
        vector = vm.input_vector(range(200))
        cache_oblivious_sort(vm, vector)
        assert vector.to_list() == list(range(200))

    def test_reverse_sorted_input(self):
        vm = make_vm()
        vector = vm.input_vector(range(200, 0, -1))
        cache_oblivious_sort(vm, vector)
        assert vector.to_list() == list(range(1, 201))

    def test_duplicates(self):
        vm = make_vm()
        data = [5] * 50 + [3] * 50 + [5] * 10
        vector = vm.input_vector(data)
        cache_oblivious_sort(vm, vector)
        assert vector.to_list() == sorted(data)

    def test_scratch_vector_is_freed(self):
        vm = make_vm()
        vector = vm.input_vector(range(100, 0, -1))
        cache_oblivious_sort(vm, vector)
        assert vm.current_words == 100  # only the sorted vector remains

    def test_sorted_copy_leaves_source_untouched(self):
        vm = make_vm()
        source = vm.input_vector([3, 1, 2])
        result = sorted_copy(vm, source)
        assert source.to_list() == [3, 1, 2]
        assert result.to_list() == [1, 2, 3]

    def test_is_sorted_helper(self):
        vm = make_vm()
        assert is_sorted(vm.input_vector([1, 2, 2, 3]))
        assert not is_sorted(vm.input_vector([1, 3, 2]))
        assert is_sorted(vm.input_vector([]))


class TestIOBehaviour:
    def test_io_scales_near_linearithmically(self):
        """Doubling n should roughly double the I/Os (times a log factor),
        far from the quadratic blow-up a naive algorithm would show."""
        params = MachineParams(memory_words=128, block_words=8)
        totals = []
        for n in (512, 1024, 2048):
            vm = ObliviousVM(params, IOStats())
            data = [random.Random(n).randrange(10**6) for _ in range(n)]
            vector = vm.input_vector(data)
            cache_oblivious_sort(vm, vector)
            totals.append(vm.stats.total)
        growth_1 = totals[1] / totals[0]
        growth_2 = totals[2] / totals[1]
        assert 1.8 <= growth_1 <= 3.0
        assert 1.8 <= growth_2 <= 3.0

    def test_larger_cache_never_hurts(self):
        data = [random.Random(9).randrange(10**6) for _ in range(2000)]
        totals = {}
        for memory in (64, 256, 1024):
            vm = ObliviousVM(MachineParams(memory, 8), IOStats())
            vector = vm.input_vector(list(data))
            cache_oblivious_sort(vm, vector)
            totals[memory] = vm.stats.total
        assert totals[256] <= totals[64]
        assert totals[1024] <= totals[256]

    def test_fits_in_cache_costs_about_one_pass(self):
        vm = make_vm(memory=1024, block=8)
        data = list(range(256, 0, -1))
        vector = vm.input_vector(data)
        cache_oblivious_sort(vm, vector)
        blocks = math.ceil(256 / 8)
        # Everything stays resident: roughly the compulsory misses of the
        # vector and its scratch copy, well below a multi-pass sort.
        assert vm.stats.reads <= 4 * blocks


@settings(max_examples=25, deadline=None)
@given(data=st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=200))
def test_property_cache_oblivious_sort_matches_sorted(data):
    """Property: cache-oblivious merge sort agrees with sorted() for any input."""
    vm = make_vm(memory=32, block=4)
    vector = vm.input_vector(data)
    cache_oblivious_sort(vm, vector)
    assert vector.to_list() == sorted(data)
