"""Unit tests for the simulated disk (repro.extmem.disk)."""

import pytest

from repro.exceptions import FileClosedError
from repro.extmem.disk import Disk, FileSlice, iter_records


class TestFiles:
    def test_create_empty_file(self):
        disk = Disk()
        file = disk.file("data")
        assert len(file) == 0
        assert "data" in disk

    def test_prepopulated_file_counts_space_but_no_io(self):
        disk = Disk()
        file = disk.file("edges", records=[(0, 1), (1, 2), (2, 3)])
        assert len(file) == 3
        assert disk.current_words == 3
        assert disk.peak_words == 3

    def test_duplicate_names_rejected(self):
        disk = Disk()
        disk.file("x")
        with pytest.raises(ValueError):
            disk.file("x")

    def test_anonymous_files_get_unique_names(self):
        disk = Disk()
        a = disk.file()
        b = disk.file()
        assert a.name != b.name

    def test_delete_releases_space_and_blocks_access(self):
        disk = Disk()
        file = disk.file("x", records=list(range(10)))
        file.delete()
        assert disk.current_words == 0
        assert file.deleted
        with pytest.raises(FileClosedError):
            len(file)

    def test_delete_is_idempotent(self):
        disk = Disk()
        file = disk.file("x", records=[1])
        file.delete()
        file.delete()
        assert disk.current_words == 0

    def test_peak_tracks_maximum_allocation(self):
        disk = Disk()
        a = disk.file("a", records=list(range(5)))
        b = disk.file("b", records=list(range(7)))
        a.delete()
        c = disk.file("c", records=list(range(2)))
        assert disk.peak_words == 12
        assert disk.current_words == 9
        b.delete()
        c.delete()

    def test_space_tracking_can_be_disabled(self):
        disk = Disk(track_space=False)
        disk.file("a", records=list(range(100)))
        assert disk.current_words == 0
        assert disk.peak_words == 0


class TestSlices:
    def test_slice_bounds_and_length(self):
        disk = Disk()
        file = disk.file("x", records=list(range(10)))
        view = file.slice(2, 6)
        assert len(view) == 4
        assert view._read_range(0, 4) == [2, 3, 4, 5]

    def test_slice_clamps_to_file_length(self):
        disk = Disk()
        file = disk.file("x", records=list(range(4)))
        view = file.slice(2, 100)
        assert len(view) == 2

    def test_nested_slices_are_relative(self):
        disk = Disk()
        file = disk.file("x", records=list(range(20)))
        outer = file.slice(5, 15)
        inner = outer.slice(2, 5)
        assert list(iter_records(inner)) == [7, 8, 9]

    def test_invalid_bounds_rejected(self):
        disk = Disk()
        file = disk.file("x", records=list(range(4)))
        with pytest.raises(ValueError):
            FileSlice(file, 3, 1)
        with pytest.raises(ValueError):
            FileSlice(file, -1, 2)

    def test_as_slice_covers_whole_file(self):
        disk = Disk()
        file = disk.file("x", records=list(range(9)))
        assert len(file.as_slice()) == 9


class TestIterRecords:
    def test_iterates_in_order(self):
        disk = Disk()
        file = disk.file("x", records=list(range(100)))
        assert list(iter_records(file, chunk=7)) == list(range(100))

    def test_empty_file_yields_nothing(self):
        disk = Disk()
        assert list(iter_records(disk.file("x"))) == []
