"""Unit tests for the explicit cache-aware machine (repro.extmem.machine)."""

import math

import pytest

from repro.analysis.model import MachineParams
from repro.exceptions import MemoryExceededError
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats


def make_machine(memory=64, block=8) -> Machine:
    return Machine(MachineParams(memory, block), IOStats())


class TestScan:
    def test_scan_charges_one_read_per_block(self):
        machine = make_machine(block=8)
        file = machine.file_from_records(list(range(50)))
        records = list(machine.scan(file))
        assert records == list(range(50))
        assert machine.stats.reads == math.ceil(50 / 8)
        assert machine.stats.writes == 0

    def test_scan_exact_block_multiple(self):
        machine = make_machine(block=8)
        file = machine.file_from_records(list(range(64)))
        list(machine.scan(file))
        assert machine.stats.reads == 8

    def test_scan_empty_file_costs_nothing(self):
        machine = make_machine()
        file = machine.empty_file()
        assert list(machine.scan(file)) == []
        assert machine.stats.total == 0

    def test_partial_scan_charges_only_touched_blocks(self):
        machine = make_machine(block=8)
        file = machine.file_from_records(list(range(80)))
        stream = machine.scan(file)
        for _ in range(10):
            next(stream)
        stream.close()
        assert machine.stats.reads == 2  # records 0..9 live in the first two blocks

    def test_scan_slice_charges_by_slice_length(self):
        machine = make_machine(block=8)
        file = machine.file_from_records(list(range(100)))
        view = file.slice(10, 34)
        assert list(machine.scan(view)) == list(range(10, 34))
        assert machine.stats.reads == math.ceil(24 / 8)

    def test_scan_many_concatenates(self):
        machine = make_machine(block=4)
        a = machine.file_from_records([1, 2, 3])
        b = machine.file_from_records([4, 5])
        assert list(machine.scan_many([a, b])) == [1, 2, 3, 4, 5]
        assert machine.stats.reads == 2


class TestWriting:
    def test_write_file_charges_one_write_per_block(self):
        machine = make_machine(block=8)
        file = machine.write_file(list(range(20)))
        assert len(file) == 20
        assert machine.stats.writes == math.ceil(20 / 8)
        assert machine.stats.reads == 0

    def test_writer_flushes_partial_block_on_close(self):
        machine = make_machine(block=8)
        with machine.writer() as out:
            out.append("a")
        assert len(out.file) == 1
        assert machine.stats.writes == 1

    def test_writer_close_is_idempotent(self):
        machine = make_machine(block=8)
        writer = machine.writer()
        writer.append(1)
        writer.close()
        writer.close()
        assert machine.stats.writes == 1

    def test_input_files_charge_nothing(self):
        machine = make_machine()
        machine.file_from_records(list(range(1000)))
        assert machine.stats.total == 0

    def test_round_trip_preserves_records(self):
        machine = make_machine(block=4)
        original = [(i, i + 1) for i in range(33)]
        file = machine.write_file(original)
        assert list(machine.scan(file)) == original


class TestMemoryAccounting:
    def test_lease_within_capacity(self):
        machine = make_machine(memory=64)
        with machine.lease(60):
            assert machine.memory_in_use == 60
            assert machine.memory_available == 4
        assert machine.memory_in_use == 0

    def test_lease_over_capacity_raises(self):
        machine = make_machine(memory=64)
        with pytest.raises(MemoryExceededError):
            with machine.lease(65):
                pass

    def test_nested_leases_accumulate(self):
        machine = make_machine(memory=64)
        with machine.lease(40):
            with pytest.raises(MemoryExceededError):
                with machine.lease(30):
                    pass
            with machine.lease(20):
                assert machine.memory_in_use == 60

    def test_negative_lease_rejected(self):
        machine = make_machine()
        with pytest.raises(ValueError):
            with machine.lease(-1):
                pass

    def test_lease_released_on_exception(self):
        machine = make_machine(memory=64)
        with pytest.raises(RuntimeError):
            with machine.lease(40):
                raise RuntimeError("boom")
        assert machine.memory_in_use == 0

    def test_load_larger_than_memory_raises(self):
        machine = make_machine(memory=64)
        file = machine.file_from_records(list(range(100)))
        with pytest.raises(MemoryExceededError):
            machine.load(file, 0, 100)

    def test_load_charges_blocks_and_returns_records(self):
        machine = make_machine(memory=64, block=8)
        file = machine.file_from_records(list(range(100)))
        chunk = machine.load(file, 16, 32)
        assert chunk == list(range(16, 48))
        assert machine.stats.reads == 4


class TestPhases:
    def test_phase_attribution(self):
        machine = make_machine(block=8)
        file = machine.file_from_records(list(range(16)))
        with machine.phase("scanning"):
            list(machine.scan(file))
        assert machine.stats.phases["scanning"] == 2

    def test_blocks_helper(self):
        machine = make_machine(block=8)
        assert machine.blocks(0) == 0
        assert machine.blocks(1) == 1
        assert machine.blocks(8) == 1
        assert machine.blocks(9) == 2
