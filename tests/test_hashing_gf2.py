"""Tests for GF(2^m) arithmetic (repro.hashing.gf2)."""

import pytest

from repro.hashing.gf2 import (
    IRREDUCIBLE_POLYNOMIALS,
    GF2Field,
    clmul,
    is_irreducible,
    poly_mod,
)


class TestPolynomialArithmetic:
    def test_clmul_basic(self):
        # (x + 1) * (x + 1) = x^2 + 1 over GF(2)
        assert clmul(0b11, 0b11) == 0b101

    def test_clmul_by_zero_and_one(self):
        assert clmul(0b1011, 0) == 0
        assert clmul(0b1011, 1) == 0b1011

    def test_poly_mod_reduces_degree(self):
        # x^2 mod (x^2 + x + 1) = x + 1
        assert poly_mod(0b100, 0b111) == 0b11

    def test_poly_mod_identity_below_modulus(self):
        assert poly_mod(0b10, 0b111) == 0b10

    def test_poly_mod_zero_modulus_rejected(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod(5, 0)

    def test_all_table_polynomials_are_irreducible(self):
        for degree, polynomial in IRREDUCIBLE_POLYNOMIALS.items():
            assert polynomial.bit_length() - 1 == degree
            assert is_irreducible(polynomial), f"degree {degree} entry is reducible"


class TestField:
    def test_unsupported_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2Field(1)
        with pytest.raises(ValueError):
            GF2Field(99)

    def test_addition_is_xor(self):
        field = GF2Field(4)
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity(self):
        field = GF2Field(4)
        for a in field.elements():
            assert field.multiply(a, 1) == a

    def test_multiplication_by_zero(self):
        field = GF2Field(4)
        for a in field.elements():
            assert field.multiply(a, 0) == 0

    def test_multiplication_commutative_and_associative(self):
        field = GF2Field(3)
        elements = list(field.elements())
        for a in elements:
            for b in elements:
                assert field.multiply(a, b) == field.multiply(b, a)
                for c in elements:
                    left = field.multiply(field.multiply(a, b), c)
                    right = field.multiply(a, field.multiply(b, c))
                    assert left == right

    def test_distributivity(self):
        field = GF2Field(3)
        elements = list(field.elements())
        for a in elements:
            for b in elements:
                for c in elements:
                    left = field.multiply(a, field.add(b, c))
                    right = field.add(field.multiply(a, b), field.multiply(a, c))
                    assert left == right

    def test_nonzero_elements_form_a_group(self):
        """Every nonzero element has a multiplicative inverse (field property)."""
        field = GF2Field(4)
        for a in range(1, field.size):
            products = {field.multiply(a, b) for b in range(1, field.size)}
            assert products == set(range(1, field.size))

    def test_power_matches_repeated_multiplication(self):
        field = GF2Field(5)
        base = 0b10110 % field.size
        accumulator = 1
        for exponent in range(10):
            assert field.power(base, exponent) == accumulator
            accumulator = field.multiply(accumulator, base)

    def test_power_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            GF2Field(4).power(3, -1)

    def test_element_range_checked(self):
        field = GF2Field(4)
        with pytest.raises(ValueError):
            field.multiply(16, 1)

    def test_inner_product_bit(self):
        field = GF2Field(4)
        assert field.inner_product_bit(0b1010, 0b1000) == 1
        assert field.inner_product_bit(0b1010, 0b0101) == 0
        assert field.inner_product_bit(0b1110, 0b0110) == 0
