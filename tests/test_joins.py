"""Tests for the relational layer and the triangle join (repro.joins)."""

import itertools

import pytest

from repro.analysis.model import MachineParams
from repro.joins.fifth_normal_form import (
    decompose_sells,
    is_join_dependent,
    reconstruct_by_joins,
)
from repro.joins.relation import Relation, RelationError
from repro.joins.triangle_join import triangle_join

SMALL_PARAMS = MachineParams(memory_words=64, block_words=8)


def cross_product_sells() -> Relation:
    """A Sells relation where each salesperson sells brands x types (join dependent)."""
    sells = Relation("Sells", ("salesperson", "brand", "productType"))
    catalog = {
        "alice": (("acme", "zenith"), ("vacuum", "toaster")),
        "bob": (("acme",), ("vacuum", "kettle")),
        "carol": (("bolt", "zenith"), ("kettle",)),
    }
    for person, (brands, types) in catalog.items():
        for brand, product_type in itertools.product(brands, types):
            sells.add((person, brand, product_type))
    return sells


class TestRelation:
    def test_schema_and_arity_checks(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "a"))
        relation = Relation("R", ("a", "b"))
        with pytest.raises(RelationError):
            relation.add((1,))

    def test_set_semantics(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(relation) == 2
        assert (1, 2) in relation

    def test_projection(self):
        relation = Relation("R", ("a", "b", "c"), [(1, 2, 3), (1, 2, 4)])
        projected = relation.project(("a", "b"))
        assert projected.attributes == ("a", "b")
        assert projected.rows() == {(1, 2)}

    def test_projection_unknown_attribute(self):
        relation = Relation("R", ("a",), [(1,)])
        with pytest.raises(RelationError):
            relation.project(("z",))

    def test_selection(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        selected = relation.select(lambda row: row["a"] > 1)
        assert selected.rows() == {(3, 4)}

    def test_natural_join_on_shared_attribute(self):
        r = Relation("R", ("a", "b"), [(1, 10), (2, 20)])
        s = Relation("S", ("b", "c"), [(10, "x"), (10, "y"), (30, "z")])
        joined = r.natural_join(s)
        assert joined.attributes == ("a", "b", "c")
        assert joined.rows() == {(1, 10, "x"), (1, 10, "y")}

    def test_natural_join_no_shared_attributes_is_cross_product(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(10,)])
        assert len(r.natural_join(s)) == 2

    def test_equality_requires_same_schema(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("a", "b"), [(1, 2)])
        t = Relation("T", ("b", "a"), [(1, 2)])
        assert r == s
        assert r != t


class TestFifthNormalForm:
    def test_cross_product_relation_is_join_dependent(self):
        assert is_join_dependent(cross_product_sells())

    def test_decompose_and_reconstruct_round_trip(self):
        sells = cross_product_sells()
        sb, bt, st = decompose_sells(sells)
        reconstructed = reconstruct_by_joins(sb, bt, st)
        assert reconstructed.rows() == sells.rows()

    def test_non_dependent_relation_detected(self):
        sells = cross_product_sells()
        # Remove a tuple that the three projections can still regenerate
        # (alice/acme via her toaster purchase, acme/vacuum via bob,
        # alice/vacuum via zenith): the join dependency no longer holds.
        victim = ("alice", "acme", "vacuum")
        smaller = Relation("Sells", sells.attributes, sells.rows() - {victim})
        assert not is_join_dependent(smaller)

    def test_schema_is_validated(self):
        wrong = Relation("Sells", ("x", "y", "z"), [(1, 2, 3)])
        with pytest.raises(ValueError):
            decompose_sells(wrong)


class TestTriangleJoin:
    @pytest.mark.parametrize("algorithm", ["cache_aware", "hu_tao_chung", "bnlj", "in_memory"])
    def test_triangle_join_equals_relational_join(self, algorithm):
        sells = cross_product_sells()
        sb, bt, st = decompose_sells(sells)
        joined, result = triangle_join(sb, bt, st, algorithm=algorithm, params=SMALL_PARAMS)
        assert joined.rows() == reconstruct_by_joins(sb, bt, st).rows()
        assert result.triangle_count == len(joined)

    def test_triangle_join_detects_spurious_tuples(self):
        """Triangles of the union graph are exactly the join, including tuples
        not in the original relation when the join dependency fails."""
        sells = cross_product_sells()
        victim = ("alice", "acme", "vacuum")  # regenerable from the projections
        smaller = Relation("Sells", sells.attributes, sells.rows() - {victim})
        sb, bt, st = decompose_sells(smaller)
        joined, _ = triangle_join(sb, bt, st, params=SMALL_PARAMS)
        assert joined.rows() == reconstruct_by_joins(sb, bt, st).rows()
        assert victim in joined.rows()

    def test_schema_mismatch_rejected(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("b", "c"), [(2, 3)])
        t = Relation("T", ("c", "d"), [(3, 4)])  # does not close the cycle on (a, c)
        with pytest.raises(ValueError):
            triangle_join(r, s, t)

    def test_empty_relations(self):
        r = Relation("R", ("a", "b"))
        s = Relation("S", ("b", "c"))
        t = Relation("T", ("a", "c"))
        joined, result = triangle_join(r, s, t, params=SMALL_PARAMS)
        assert len(joined) == 0
        assert result.triangle_count == 0

    def test_io_reported_for_comparison(self):
        sells = cross_product_sells()
        sb, bt, st = decompose_sells(sells)
        _, ours = triangle_join(sb, bt, st, algorithm="cache_aware", params=SMALL_PARAMS)
        _, bnlj = triangle_join(sb, bt, st, algorithm="bnlj", params=SMALL_PARAMS)
        assert ours.io.total > 0
        assert bnlj.io.total > 0
