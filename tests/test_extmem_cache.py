"""Unit tests for the LRU block cache simulator (repro.extmem.cache)."""

import pytest

from repro.exceptions import InvalidConfigurationError
from repro.extmem.cache import LRUBlockCache
from repro.extmem.stats import IOStats


def make_cache(capacity=4):
    stats = IOStats()
    return LRUBlockCache(capacity, stats), stats


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidConfigurationError):
            LRUBlockCache(0, IOStats())

    def test_first_access_is_a_miss_and_charges_a_read(self):
        cache, stats = make_cache()
        cache.access(0, 0)
        assert stats.reads == 1
        assert cache.misses == 1
        assert cache.hits == 0

    def test_repeated_access_is_a_hit(self):
        cache, stats = make_cache()
        cache.access(0, 0)
        cache.access(0, 0)
        assert stats.reads == 1
        assert cache.hits == 1

    def test_distinct_storages_do_not_collide(self):
        cache, stats = make_cache()
        cache.access(0, 5)
        cache.access(1, 5)
        assert stats.reads == 2

    def test_hit_rate(self):
        cache, _ = make_cache()
        cache.access(0, 0)
        cache.access(0, 0)
        cache.access(0, 0)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_hit_rate_is_zero(self):
        cache, _ = make_cache()
        assert cache.hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_order(self):
        cache, stats = make_cache(capacity=2)
        cache.access(0, 0)
        cache.access(0, 1)
        cache.access(0, 0)  # block 0 becomes most recently used
        cache.access(0, 2)  # evicts block 1
        cache.access(0, 0)  # still resident -> hit
        assert cache.hits == 2
        cache.access(0, 1)  # was evicted -> miss
        assert stats.reads == 4

    def test_clean_eviction_charges_no_write(self):
        cache, stats = make_cache(capacity=1)
        cache.access(0, 0)
        cache.access(0, 1)
        assert stats.writes == 0

    def test_dirty_eviction_charges_a_write(self):
        cache, stats = make_cache(capacity=1)
        cache.access(0, 0, write=True)
        cache.access(0, 1)
        assert stats.writes == 1

    def test_dirty_flag_sticks_until_eviction(self):
        cache, stats = make_cache(capacity=1)
        cache.access(0, 0, write=True)
        cache.access(0, 0)  # read hit must not clear the dirty bit
        cache.access(0, 1)
        assert stats.writes == 1

    def test_capacity_never_exceeded(self):
        cache, _ = make_cache(capacity=3)
        for block in range(10):
            cache.access(0, block)
            assert len(cache) <= 3


class TestWriteNewAndDiscard:
    def test_write_new_charges_no_read(self):
        cache, stats = make_cache()
        cache.write_new(0, 0)
        assert stats.reads == 0
        assert len(cache) == 1

    def test_write_new_block_is_dirty(self):
        cache, stats = make_cache(capacity=1)
        cache.write_new(0, 0)
        cache.access(0, 1)
        assert stats.writes == 1

    def test_write_new_eviction_of_dirty_block_charges_write(self):
        cache, stats = make_cache(capacity=1)
        cache.access(0, 0, write=True)
        cache.write_new(0, 1)
        assert stats.writes == 1

    def test_discard_storage_drops_blocks_without_writeback(self):
        cache, stats = make_cache(capacity=4)
        cache.access(7, 0, write=True)
        cache.access(7, 1, write=True)
        cache.access(8, 0, write=True)
        cache.discard_storage(7)
        assert len(cache) == 1
        cache.flush()
        assert stats.writes == 1  # only storage 8's dirty block is written back

    def test_flush_writes_back_dirty_blocks_and_empties(self):
        cache, stats = make_cache(capacity=4)
        cache.access(0, 0, write=True)
        cache.access(0, 1)
        cache.flush()
        assert stats.writes == 1
        assert len(cache) == 0


class TestScanBehaviour:
    def test_sequential_scan_costs_one_miss_per_block(self):
        cache, stats = make_cache(capacity=4)
        block_size = 8
        for index in range(256):
            cache.access(0, index // block_size)
        assert stats.reads == 256 // block_size

    def test_scan_larger_than_cache_then_rescan_misses_again(self):
        cache, stats = make_cache(capacity=2)
        for _ in range(2):
            for block in range(10):
                cache.access(0, block)
        assert stats.reads == 20
