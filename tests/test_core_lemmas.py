"""Tests for the paper's subroutines: Lemma 1 and Lemma 2."""

import pytest

from repro.analysis.bounds import sort_io
from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.emit import DedupCheckingSink
from repro.core.lemma1 import triangles_through_vertex
from repro.core.lemma2 import triangles_with_pivot_in
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import clique, erdos_renyi_gnm


def make_machine(memory=64, block=8):
    return Machine(MachineParams(memory, block), IOStats())


def oracle_through_vertex(edges, vertex):
    return {t for t in triangles_in_memory(edges) if vertex in t}


def oracle_with_pivot_in(edges, pivot_edges):
    pivots = set(pivot_edges)
    return {t for t in triangles_in_memory(edges) if (t[1], t[2]) in pivots}


class TestLemma1:
    def test_enumerates_triangles_through_vertex(self):
        graph = erdos_renyi_gnm(40, 150, seed=2)
        edges = graph.degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        for vertex in (0, 10, 25, 39):
            sink = DedupCheckingSink()
            triangles_through_vertex(machine, [edge_file], vertex, sink)
            assert sink.as_set() == oracle_through_vertex(edges, vertex)

    def test_vertex_with_no_triangles(self):
        edges = [(0, 1), (1, 2), (2, 3)]  # a path
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        count = triangles_through_vertex(machine, [edge_file], 1, sink)
        assert count == 0
        assert sink.count == 0

    def test_excluded_vertices_suppress_their_triangles(self):
        # two triangles sharing the edge (3, 4): {2,3,4} and {1,3,4}
        edges = [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        triangles_through_vertex(machine, [edge_file], 3, sink, excluded=frozenset({2}))
        assert sink.as_set() == {(1, 3, 4)}

    def test_excluded_target_vertex_returns_nothing(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        assert triangles_through_vertex(machine, [edge_file], 0, sink, excluded={0}) == 0

    def test_triangle_filter_applied(self):
        edges = clique(6).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        triangles_through_vertex(
            machine, [edge_file], 0, sink, triangle_filter=lambda t: t[2] == 5
        )
        assert all(t[2] == 5 and t[0] == 0 for t in sink.as_set())

    def test_multiple_sources_equivalent_to_union(self):
        edges = clique(8).degree_order().edges
        machine = make_machine()
        first = machine.file_from_records(edges[: len(edges) // 2])
        second = machine.file_from_records(edges[len(edges) // 2 :])
        sink = DedupCheckingSink()
        triangles_through_vertex(machine, [first, second], 2, sink)
        assert sink.as_set() == oracle_through_vertex(edges, 2)

    def test_io_cost_within_constant_of_sort(self):
        """Lemma 1 promises O(sort(E)) I/Os."""
        graph = erdos_renyi_gnm(120, 2000, seed=5)
        edges = graph.degree_order().edges
        params = MachineParams(128, 16)
        machine = Machine(params, IOStats())
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        triangles_through_vertex(machine, [edge_file], 60, sink)
        assert machine.stats.total <= 20 * sort_io(len(edges), params)

    def test_temporary_files_cleaned_up(self):
        edges = clique(10).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        live_before = set(machine.disk.files)
        triangles_through_vertex(machine, [edge_file], 3, DedupCheckingSink())
        assert set(machine.disk.files) == live_before


class TestLemma2:
    def test_pivot_set_equal_to_edges_enumerates_everything(self):
        graph = erdos_renyi_gnm(50, 220, seed=9)
        edges = graph.degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        count = triangles_with_pivot_in(machine, edge_file, [edge_file], sink)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert count == len(sink.as_set())

    def test_restricted_pivot_set(self):
        edges = clique(9).degree_order().edges
        pivot_edges = edges[::3]
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        pivot_file = machine.file_from_records(pivot_edges)
        sink = DedupCheckingSink()
        triangles_with_pivot_in(machine, pivot_file, [edge_file], sink)
        assert sink.as_set() == oracle_with_pivot_in(edges, pivot_edges)

    def test_empty_pivot_set(self):
        edges = clique(5).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        empty = machine.empty_file()
        assert triangles_with_pivot_in(machine, empty, [edge_file], DedupCheckingSink()) == 0

    def test_cone_filter_restricts_cone_vertices(self):
        edges = clique(8).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        triangles_with_pivot_in(
            machine, edge_file, [edge_file], sink, cone_filter=lambda v: v < 2
        )
        expected = {t for t in triangles_in_memory(edges) if t[0] < 2}
        assert sink.as_set() == expected

    def test_triangle_filter(self):
        edges = clique(7).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        triangles_with_pivot_in(
            machine, edge_file, [edge_file], sink, triangle_filter=lambda t: sum(t) % 2 == 0
        )
        expected = {t for t in triangles_in_memory(edges) if sum(t) % 2 == 0}
        assert sink.as_set() == expected

    def test_multiple_adjacency_sources(self):
        """Splitting the (sorted) edge set into consecutive sorted slices must not
        change the outcome -- this is how the colour-class iteration uses it."""
        edges = clique(10).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        third = len(edges) // 3
        sources = [
            edge_file.slice(0, third),
            edge_file.slice(third, 2 * third),
            edge_file.slice(2 * third, len(edges)),
        ]
        # NOTE: slices of a lexicographically sorted file are themselves sorted.
        sink = DedupCheckingSink()
        triangles_with_pivot_in(machine, edge_file, sources, sink)
        assert sink.as_set() == set(triangles_in_memory(edges))

    def test_invalid_memory_fraction_rejected(self):
        machine = make_machine()
        edge_file = machine.file_from_records([(0, 1)])
        with pytest.raises(ValueError):
            triangles_with_pivot_in(
                machine, edge_file, [edge_file], DedupCheckingSink(), memory_fraction=0.9
            )

    def test_io_scales_with_pivot_batches(self):
        """Halving memory should roughly double the I/Os (the E'E/(MB) term)."""
        graph = erdos_renyi_gnm(150, 3000, seed=3)
        edges = graph.degree_order().edges
        totals = {}
        for memory in (512, 256, 128):
            machine = Machine(MachineParams(memory, 16), IOStats())
            edge_file = machine.file_from_records(edges)
            triangles_with_pivot_in(machine, edge_file, [edge_file], DedupCheckingSink())
            totals[memory] = machine.stats.total
        assert totals[256] >= 1.5 * totals[512]
        assert totals[128] >= 1.5 * totals[256]
