"""Tests for the reusable TriangleEngine (repro.core.engine)."""

import math

import pytest

from repro.analysis.model import MachineParams
from repro.core.api import enumerate_triangles
from repro.core.emit import CollectingSink
from repro.core.engine import TriangleEngine
from repro.exceptions import GraphFormatError, OptionsError
from repro.graph.graph import DegreeOrder, Graph
from repro.graph.generators import clique, erdos_renyi_gnm

SMALL_PARAMS = MachineParams(memory_words=64, block_words=8)
ALL_ALGORITHMS = [
    "cache_aware",
    "deterministic",
    "cache_oblivious",
    "hu_tao_chung",
    "dementiev",
    "bnlj",
    "in_memory",
]


class TestCanonicaliseOnce:
    def test_three_runs_canonicalise_exactly_once(self, monkeypatch):
        calls = {"count": 0}
        original = Graph.degree_order

        def counting(self):
            calls["count"] += 1
            return original(self)

        monkeypatch.setattr(Graph, "degree_order", counting)
        engine = TriangleEngine(erdos_renyi_gnm(30, 90, seed=2), params=SMALL_PARAMS)
        for algorithm in ("cache_aware", "hu_tao_chung", "dementiev"):
            engine.run(algorithm, seed=1)
        assert calls["count"] == 1

    def test_one_shot_wrapper_canonicalises_per_call(self, monkeypatch):
        calls = {"count": 0}
        original = Graph.degree_order

        def counting(self):
            calls["count"] += 1
            return original(self)

        monkeypatch.setattr(Graph, "degree_order", counting)
        graph = erdos_renyi_gnm(30, 90, seed=2)
        enumerate_triangles(graph, algorithm="hu_tao_chung", params=SMALL_PARAMS)
        enumerate_triangles(graph, algorithm="hu_tao_chung", params=SMALL_PARAMS)
        assert calls["count"] == 2


class TestBitIdenticalCounters:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_engine_reuse_matches_one_shot(self, algorithm):
        graph = erdos_renyi_gnm(40, 150, seed=3)
        one_shot = enumerate_triangles(graph, algorithm=algorithm, params=SMALL_PARAMS, seed=1)
        engine = TriangleEngine(graph, params=SMALL_PARAMS)
        # Burn a first run so the second exercises true engine *reuse*.
        engine.run(algorithm, seed=1)
        reused = engine.run(algorithm, seed=1, collect=True)
        assert reused.io == one_shot.io
        assert reused.triangle_count == one_shot.triangle_count
        assert reused.disk_peak_words == one_shot.disk_peak_words
        assert sorted(map(tuple, map(sorted, reused.triangles))) == sorted(
            map(tuple, map(sorted, one_shot.triangles))
        )

    def test_count_only_fast_path_counters_unchanged(self):
        graph = erdos_renyi_gnm(40, 150, seed=3)
        engine = TriangleEngine(graph, params=SMALL_PARAMS)
        collected = engine.run("cache_aware", seed=1, collect=True)
        counted = engine.run("cache_aware", seed=1, collect=False)
        assert counted.io == collected.io
        assert counted.triangle_count == collected.triangle_count
        assert counted.triangles is None

    def test_count_only_fast_path_skips_translation(self, monkeypatch):
        def explode(self, triangle):
            raise AssertionError("rank->label translation must be skipped when counting")

        monkeypatch.setattr(DegreeOrder, "to_labels", explode)
        engine = TriangleEngine(clique(8), params=SMALL_PARAMS)
        assert engine.count("cache_aware", seed=1) == math.comb(8, 3)


class TestResults:
    def test_machine_runs_report_phases_in_both_paths(self):
        graph = erdos_renyi_gnm(40, 150, seed=3)
        engine_result = TriangleEngine(graph, params=SMALL_PARAMS).run("cache_aware", seed=1)
        wrapper_result = enumerate_triangles(
            graph, algorithm="cache_aware", params=SMALL_PARAMS, seed=1
        )
        assert engine_result.phases and "triples" in engine_result.phases
        assert wrapper_result.phases == engine_result.phases

    def test_non_machine_runs_have_no_phases(self):
        engine = TriangleEngine(clique(6), params=SMALL_PARAMS)
        assert engine.run("cache_oblivious", seed=1).phases is None
        assert engine.run("in_memory").phases is None

    def test_result_views_delegate_to_snapshot(self):
        result = TriangleEngine(clique(8), params=SMALL_PARAMS).run("cache_aware", seed=1)
        assert result.reads == result.io.reads
        assert result.writes == result.io.writes
        assert result.operations == result.io.operations
        assert result.total_ios == result.io.total

    def test_default_params_fall_back(self):
        engine = TriangleEngine(clique(6))
        assert engine.run("in_memory").params == MachineParams.default()
        override = MachineParams(128, 8)
        assert engine.run("in_memory", params=override).params == override

    def test_sink_and_collect_tee(self):
        sink = CollectingSink()
        engine = TriangleEngine(Graph(edges=[(10, 20), (20, 30), (10, 30)]), params=SMALL_PARAMS)
        result = engine.run("cache_aware", sink=sink, collect=True)
        assert sink.as_set() == {(10, 20, 30)}
        assert result.triangles == [(10, 20, 30)]

    def test_run_many(self):
        engine = TriangleEngine(clique(8), params=SMALL_PARAMS)
        results = engine.run_many([("cache_aware", {"seed": 1}), ("hu_tao_chung", {})])
        assert [r.algorithm for r in results] == ["cache_aware", "hu_tao_chung"]
        assert all(r.triangle_count == math.comb(8, 3) for r in results)

    def test_invalid_options_rejected_before_running(self):
        engine = TriangleEngine(clique(6), params=SMALL_PARAMS)
        with pytest.raises(OptionsError):
            engine.run("cache_aware", num_colors=-1)
        with pytest.raises(OptionsError):
            engine.run("bnlj", num_colors=2)


class TestCanonicalEdgeEngines:
    def test_identity_labels(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        engine = TriangleEngine.from_canonical_edges(edges, params=SMALL_PARAMS)
        result = engine.run("cache_aware", collect=True)
        assert result.triangles == [(0, 1, 2)]
        assert result.order is None
        assert engine.to_labels((0, 1, 2)) == (0, 1, 2)

    def test_validation_rejects_non_canonical(self):
        with pytest.raises(GraphFormatError):
            TriangleEngine.from_canonical_edges([(2, 1)], params=SMALL_PARAMS)

    def test_sink_receives_rank_triangles(self):
        sink = CollectingSink()
        edges = [(0, 1), (0, 2), (1, 2)]
        engine = TriangleEngine.from_canonical_edges(edges, params=SMALL_PARAMS)
        result = engine.run("hu_tao_chung", sink=sink)
        assert sink.as_set() == {(0, 1, 2)}
        assert result.triangle_count == 1


class TestStreaming:
    def test_stream_matches_collected(self):
        graph = erdos_renyi_gnm(40, 150, seed=3)
        engine = TriangleEngine(graph, params=SMALL_PARAMS)
        collected = engine.run("cache_aware", seed=1, collect=True).triangles
        streamed = [
            triangle
            for batch in engine.stream("cache_aware", seed=1, batch_size=7)
            for triangle in batch
        ]
        assert sorted(map(tuple, map(sorted, streamed))) == sorted(
            map(tuple, map(sorted, collected))
        )

    def test_batches_respect_batch_size(self):
        engine = TriangleEngine(clique(10), params=SMALL_PARAMS)
        batches = list(engine.stream("in_memory", batch_size=16))
        assert all(len(batch) <= 16 for batch in batches)
        assert sum(len(batch) for batch in batches) == math.comb(10, 3)

    def test_batches_respect_batch_size_through_emit_many(self):
        # The cache-aware algorithm emits through the batched emit_many
        # path with batches of its own sizing; the stream sink must
        # re-chunk them to the consumer's bound.
        engine = TriangleEngine(clique(12), params=SMALL_PARAMS)
        batches = list(engine.stream("cache_aware", seed=1, batch_size=16))
        assert all(len(batch) <= 16 for batch in batches)
        assert sum(len(batch) for batch in batches) == math.comb(12, 3)

    def test_early_close_does_not_hang(self):
        engine = TriangleEngine(clique(12), params=SMALL_PARAMS)
        stream = engine.stream("in_memory", batch_size=1)
        assert len(next(stream)) == 1
        stream.close()  # must tear the worker down without blocking

    def test_errors_propagate_to_consumer(self):
        engine = TriangleEngine(clique(6), params=SMALL_PARAMS)
        with pytest.raises(OptionsError):
            list(engine.stream("cache_aware", nonsense=1))

    def test_batch_size_validated(self):
        engine = TriangleEngine(clique(6), params=SMALL_PARAMS)
        with pytest.raises(ValueError):
            next(engine.stream("in_memory", batch_size=0))
