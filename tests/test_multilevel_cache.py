"""Tests for the multilevel LRU cache simulation (repro.extmem.multilevel)."""

import pytest

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import count_triangles_in_memory
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.emit import DedupCheckingSink
from repro.extmem.multilevel import CacheLevel, MultiLevelBlockCache, attach_multilevel
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.io import edges_to_vector


class TestMultiLevelBlockCache:
    def test_requires_at_least_one_level(self):
        with pytest.raises(ValueError):
            MultiLevelBlockCache([], IOStats())

    def test_level_capacity_validated(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 0)

    def test_each_level_counts_its_own_misses(self):
        stats = IOStats()
        cache = MultiLevelBlockCache(
            [CacheLevel("small", 2), CacheLevel("large", 8)], stats
        )
        for block in range(8):
            cache.access(0, block)
        for block in range(8):
            cache.access(0, block)
        misses = cache.misses_by_level()
        # The large level holds all 8 blocks: only compulsory misses.
        assert misses["large"] == 8
        # The small level (2 blocks) thrashes on the second pass as well.
        assert misses["small"] == 16
        # VM-visible stats mirror the largest level.
        assert stats.reads == 8

    def test_smaller_level_never_has_fewer_misses(self):
        stats = IOStats()
        cache = MultiLevelBlockCache(
            [CacheLevel("l1", 2), CacheLevel("l2", 4), CacheLevel("l3", 16)], stats
        )
        import random

        rng = random.Random(0)
        for _ in range(500):
            cache.access(0, rng.randrange(32), write=rng.random() < 0.3)
        cache.flush()
        totals = cache.total_by_level()
        assert totals["l1"] >= totals["l2"] >= totals["l3"]

    def test_discard_and_flush_forwarded(self):
        stats = IOStats()
        cache = MultiLevelBlockCache([CacheLevel("l1", 2), CacheLevel("l2", 4)], stats)
        cache.access(5, 0, write=True)
        cache.discard_storage(5)
        cache.flush()
        assert cache.total_by_level()["l2"] == 1  # the compulsory read only

    def test_hit_rate_reports_largest_level(self):
        cache = MultiLevelBlockCache([CacheLevel("l1", 1), CacheLevel("l2", 4)], IOStats())
        cache.access(0, 0)
        cache.access(0, 0)
        assert cache.hit_rate == pytest.approx(0.5)


class TestAttachMultilevel:
    def test_single_run_reports_all_levels(self):
        """One cache-oblivious execution yields per-level I/O counts, and each
        level's count matches what a dedicated single-level run would give --
        the operational content of the multilevel-LRU property of Theorem 1."""
        edges = erdos_renyi_gnm(60, 200, seed=2).degree_order().edges
        expected_triangles = count_triangles_in_memory(edges)
        block = 8
        level_memories = {"L1": 32, "L2": 128, "L3": 512}

        vm, cache = attach_multilevel(
            MachineParams(memory_words=512, block_words=block), level_memories
        )
        vector = edges_to_vector(vm, edges)
        sink = DedupCheckingSink()
        cache_oblivious_randomized(vm, vector, sink, seed=5)
        cache.flush()
        assert sink.count == expected_triangles
        multilevel_totals = cache.total_by_level()

        for name, memory in level_memories.items():
            single_vm = ObliviousVM(MachineParams(memory, block), IOStats())
            single_vector = edges_to_vector(single_vm, edges)
            cache_oblivious_randomized(single_vm, single_vector, DedupCheckingSink(), seed=5)
            single_vm.flush()
            assert multilevel_totals[name] == single_vm.stats.total

    def test_levels_ordered_by_capacity(self):
        vm, cache = attach_multilevel(
            MachineParams(memory_words=256, block_words=8), {"big": 256, "small": 32}
        )
        assert [level.name for level in cache.levels] == ["small", "big"]
        assert vm.cache is cache
