"""API-surface snapshot: the public names of ``repro`` and ``repro.core``.

An api_redesign-era regression net: removing or renaming a public symbol (or
accidentally growing the surface) must be a conscious, reviewed change.  If
this test fails because the surface changed *intentionally*, update the
snapshots below in the same commit and call the change out in the PR.
"""

import importlib

import pytest

REPRO_SURFACE = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CollectingSink",
    "CountingSink",
    "EnumerationResult",
    "Graph",
    "IOStats",
    "MachineParams",
    "RunResult",
    "Triangle",
    "TriangleEngine",
    "__version__",
    "algorithm_specs",
    "count_triangles",
    "enumerate_triangles",
    "list_algorithms",
    "register_algorithm",
]

REPRO_CORE_SURFACE = [
    "ALGORITHMS",
    "AlgorithmOptions",
    "AlgorithmSpec",
    "CollectingSink",
    "CountingSink",
    "DedupCheckingSink",
    "EnumerationResult",
    "RunResult",
    "ShardingOptions",  # engine sharding knobs (PR 4)
    "Triangle",
    "TriangleEngine",
    "TriangleSink",
    "algorithm_specs",
    "count_triangles",
    "enumerate_triangles",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "sorted_triangle",
]


@pytest.mark.parametrize(
    "module_name,expected",
    [("repro", REPRO_SURFACE), ("repro.core", REPRO_CORE_SURFACE)],
    ids=["repro", "repro.core"],
)
def test_public_surface_snapshot(module_name, expected):
    module = importlib.import_module(module_name)
    assert sorted(module.__all__) == sorted(expected)
    for name in expected:
        assert getattr(module, name, None) is not None, f"{module_name}.{name} not importable"


def test_legacy_wrappers_still_importable():
    # The pre-engine import paths users may have pinned in scripts.
    from repro import count_triangles, enumerate_triangles  # noqa: F401
    from repro.core import EnumerationResult  # noqa: F401
    from repro.core.api import ALGORITHMS, EnumerationResult  # noqa: F401, F811
    from repro.experiments import RunResult, run_on_edges  # noqa: F401
    from repro.experiments.runner import RunResult  # noqa: F401, F811


def test_unified_result_type_is_shared():
    from repro.core.api import EnumerationResult
    from repro.core.result import RunResult
    from repro.experiments.runner import RunResult as RunnerResult

    assert EnumerationResult is RunResult
    assert RunnerResult is RunResult
