"""Tests for edge-list files (repro.graph.files) and triangle metrics (repro.graph.metrics)."""

import math

import pytest

from repro.analysis.model import MachineParams
from repro.exceptions import GraphFormatError
from repro.graph.files import read_edge_list, write_edge_list
from repro.graph.generators import clique, complete_bipartite, erdos_renyi_gnm, path_graph
from repro.graph.graph import Graph
from repro.graph.metrics import (
    average_clustering,
    clustering_coefficients,
    local_clustering_coefficient,
    transitivity,
    triangle_statistics,
)

PARAMS = MachineParams(memory_words=64, block_words=8)


class TestEdgeListFiles:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi_gnm(40, 120, seed=3)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header=["a test graph"])
        loaded = read_edge_list(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        assert {frozenset(e) for e in loaded.edges()} == {frozenset(e) for e in graph.edges()}

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n1 2\n2 3\n# another\n1 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 3

    def test_integer_labels_parsed_as_ints(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n")
        graph = read_edge_list(path)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge("1", "2")

    def test_string_labels_preserved(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\nbob carol\n")
        graph = read_edge_list(path)
        assert graph.has_edge("alice", "bob")

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_self_loop_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "loop.txt"
        path.write_text("1 2\n3 3\n")
        with pytest.raises(GraphFormatError, match="2"):
            read_edge_list(path)

    def test_extra_columns_ignored(self, tmp_path):
        # SNAP exports append weights/timestamps; the default keeps just the
        # two endpoint labels instead of silently failing.
        path = tmp_path / "weighted.txt"
        path.write_text("1 2 0.5\n2 3 0.7\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3)

    def test_extra_columns_error_mode_rejects_with_line_number(self, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("1 2\n2 3 1393621093\n")
        with pytest.raises(GraphFormatError, match="weighted.txt:2"):
            read_edge_list(path, extra_columns="error")
        # ...and the clean part of the file still loads in error mode.
        path.write_text("1 2\n2 3\n")
        assert read_edge_list(path, extra_columns="error").num_edges == 2

    def test_extra_columns_knob_validated(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n")
        with pytest.raises(ValueError, match="extra_columns"):
            read_edge_list(path, extra_columns="truncate")

    def test_empty_comment_prefix_rejected(self, tmp_path):
        # ``line.startswith("")`` is always true: before the fix this
        # silently skipped every line and returned an empty graph.
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 3\n")
        with pytest.raises(GraphFormatError, match="comment_prefix"):
            read_edge_list(path, comment_prefix="")

    def test_alternative_comment_prefix_still_works(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("% comment\n1 2\n")
        assert read_edge_list(path, comment_prefix="%").num_edges == 1

    def test_written_file_is_sorted_and_commented(self, tmp_path):
        graph = Graph(edges=[(3, 1), (2, 1)])
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header=["hello"])
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1:] == sorted(lines[1:])


class TestMetrics:
    def test_clique_statistics(self):
        graph = clique(8)
        stats = triangle_statistics(graph, params=PARAMS)
        assert stats.triangle_count == math.comb(8, 3)
        # every vertex of K8 is in C(7,2) triangles, every edge in 6
        assert all(count == math.comb(7, 2) for count in stats.per_vertex.values())
        assert all(count == 6 for count in stats.per_edge.values())
        assert stats.simulated_ios > 0

    def test_triangle_free_graph(self):
        graph = complete_bipartite(5, 5)
        stats = triangle_statistics(graph, params=PARAMS)
        assert stats.triangle_count == 0
        assert stats.triangles_of(0) == 0
        assert transitivity(graph, stats) == 0.0

    def test_clustering_coefficients_on_clique(self):
        graph = clique(6)
        coefficients = clustering_coefficients(graph, params=PARAMS)
        assert all(value == pytest.approx(1.0) for value in coefficients.values())
        assert average_clustering(graph, params=PARAMS) == pytest.approx(1.0)

    def test_transitivity_of_clique_is_one(self):
        graph = clique(7)
        assert transitivity(graph, params=PARAMS) == pytest.approx(1.0)

    def test_path_graph_has_zero_clustering(self):
        graph = path_graph(10)
        assert average_clustering(graph, params=PARAMS) == 0.0

    def test_local_coefficient_matches_definition(self):
        # vertex "a" has neighbours b, c, d; only edge (b, c) exists among them.
        graph = Graph(edges=[("a", "b"), ("a", "c"), ("a", "d"), ("b", "c")])
        stats = triangle_statistics(graph, params=PARAMS)
        assert stats.triangles_of("a") == 1
        assert local_clustering_coefficient(graph, "a", stats) == pytest.approx(1 / 3)
        assert local_clustering_coefficient(graph, "d", stats) == 0.0

    def test_edge_support(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        stats = triangle_statistics(graph, params=PARAMS)
        assert stats.support_of(0, 1) == 1
        assert stats.support_of(2, 3) == 1
        assert stats.support_of(1, 2) == 1
        assert stats.support_of(0, 3) == 0

    def test_statistics_independent_of_algorithm(self):
        graph = erdos_renyi_gnm(30, 90, seed=5)
        reference = triangle_statistics(graph, algorithm="in_memory")
        for algorithm in ("cache_aware", "hu_tao_chung", "dementiev"):
            stats = triangle_statistics(graph, algorithm=algorithm, params=PARAMS)
            assert stats.triangle_count == reference.triangle_count
            assert stats.per_vertex == reference.per_vertex
            assert stats.per_edge == reference.per_edge

    def test_matches_networkx_if_available(self):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_gnm(40, 140, seed=8)
        nx_graph = networkx.Graph(list(graph.edges()))
        ours = clustering_coefficients(graph, params=PARAMS)
        theirs = networkx.clustering(nx_graph)
        for vertex, value in theirs.items():
            assert ours[vertex] == pytest.approx(value)
        assert transitivity(graph, params=PARAMS) == pytest.approx(
            networkx.transitivity(nx_graph)
        )
