"""CI guard: the lint baseline may only shrink together with a code fix.

``.repro-lint-baseline.json`` records accepted pre-existing findings.  The
honest way to remove an entry is to fix the finding, which necessarily
touches the offending file.  Deleting or down-counting an entry while
touching *only* the baseline file would silently re-accept the debt as
"clean" -- this script rejects that.

Usage (from CI, on pull requests)::

    python tools/check_baseline_shrink.py origin/<base-branch>

Exit 0 when every removed/shrunk entry's file is part of the diff against
the base ref; exit 1 otherwise.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

BASELINE_NAME = ".repro-lint-baseline.json"


def _git(*arguments: str) -> str:
    return subprocess.run(["git", *arguments], check=True, capture_output=True, text=True).stdout


def _entries(document_text: str) -> dict[tuple[str, str, str], int]:
    document = json.loads(document_text)
    counts: dict[tuple[str, str, str], int] = {}
    for entry in document.get("entries", []):
        key = (str(entry["file"]), str(entry["code"]), str(entry["source_hash"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print(f"usage: {Path(__file__).name} <base-ref>", file=sys.stderr)
        return 2
    base_ref = argv[0]

    try:
        base_text = _git("show", f"{base_ref}:{BASELINE_NAME}")
    except subprocess.CalledProcessError:
        print(f"no baseline at {base_ref}: nothing can have shrunk")
        return 0
    baseline_path = Path(BASELINE_NAME)
    head_text = baseline_path.read_text(encoding="utf-8") if baseline_path.exists() else "{}"

    base_entries = _entries(base_text)
    head_entries = _entries(head_text)
    diff_output = _git("diff", "--name-only", f"{base_ref}...HEAD")
    changed_files = set(diff_output.splitlines()) - {BASELINE_NAME}

    violations: list[str] = []
    for key, base_count in sorted(base_entries.items()):
        file, code, digest = key
        if head_entries.get(key, 0) < base_count and file not in changed_files:
            violations.append(
                f"{file}: {code} ({digest}) left the baseline, but {file} is "
                "not in this change -- baseline entries are removed by fixing "
                "the finding, not by editing the baseline"
            )
    if violations:
        print("baseline shrink-by-edit rejected:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    removed = sum(max(0, count - head_entries.get(key, 0)) for key, count in base_entries.items())
    print(f"baseline ok: {removed} entries removed, all alongside code changes")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
