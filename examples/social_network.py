"""Triangle analysis of a skewed "social network" graph.

Triangle enumeration is the workhorse behind clustering coefficients,
community detection and friend-of-friend analyses (the applications cited in
the paper's introduction).  This example builds a preferential-attachment
graph (heavy-tailed degrees, like a social network), streams its triangles
through a custom sink that accumulates per-vertex triangle counts, and
reports the most "clustered" members -- while also showing what the run
would have cost on an external-memory machine, for each algorithm.

Run with::

    python examples/social_network.py
"""

from collections import Counter

from repro import MachineParams, enumerate_triangles
from repro.graph.generators import barabasi_albert


class TriangleCensus:
    """A sink that counts, for every vertex, the triangles it participates in."""

    def __init__(self) -> None:
        self.per_vertex: Counter = Counter()
        self.total = 0

    def emit(self, a, b, c) -> None:
        self.total += 1
        self.per_vertex[a] += 1
        self.per_vertex[b] += 1
        self.per_vertex[c] += 1


def clustering_coefficient(triangles: int, degree: int) -> float:
    """Local clustering coefficient from a triangle count and a degree."""
    if degree < 2:
        return 0.0
    return 2.0 * triangles / (degree * (degree - 1))


def main() -> None:
    graph = barabasi_albert(num_vertices=600, edges_per_vertex=4, seed=11)
    params = MachineParams(memory_words=256, block_words=16)

    census = TriangleCensus()
    result = enumerate_triangles(
        graph, algorithm="cache_aware", params=params, seed=0, sink=census, collect=False
    )
    print(f"network: {graph.num_vertices} members, {result.num_edges} friendships")
    print(f"triangles (closed friend trios): {census.total}")
    print()

    print("most embedded members (triangles, degree, clustering coefficient):")
    for vertex, triangles in census.per_vertex.most_common(5):
        degree = graph.degree(vertex)
        coefficient = clustering_coefficient(triangles, degree)
        print(f"  member {vertex:4d}: {triangles:5d} triangles, degree {degree:3d}, C = {coefficient:.3f}")
    print()

    print("simulated external-memory cost of the same analysis, by algorithm:")
    for algorithm in ("cache_aware", "deterministic", "cache_oblivious", "hu_tao_chung", "dementiev"):
        run = enumerate_triangles(
            graph, algorithm=algorithm, params=params, seed=0, collect=False
        )
        print(
            f"  {algorithm:16s} {run.io.total:8d} I/Os   "
            f"({run.wall_time_seconds:.2f}s simulated on this laptop)"
        )


if __name__ == "__main__":
    main()
