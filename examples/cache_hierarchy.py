"""Cache-obliviousness in action: one algorithm, many cache configurations.

The cache-oblivious algorithm of Section 3 never looks at M or B.  The same
run therefore adapts automatically to *every* level of a memory hierarchy --
the property Frigo et al.'s LRU argument formalises and that Theorem 1
inherits.  This example executes the identical algorithm (same seed, same
input, hence the exact same sequence of element accesses) against a range of
simulated cache configurations resembling L1 / L2 / L3 / RAM, and shows that

* the access sequence (operation count) is identical every time, and
* the I/O count charged by the LRU simulator falls as the cache grows,
  with the regularity ratio Q(M)/Q(2M) staying bounded.

Run with::

    python examples/cache_hierarchy.py
"""

from repro import MachineParams
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.emit import CountingSink
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.io import edges_to_vector

#: (label, memory words, block words) -- a toy multilevel hierarchy.
HIERARCHY = [
    ("L1-like ", 64, 8),
    ("L2-like ", 256, 16),
    ("L3-like ", 1024, 16),
    ("RAM-like", 4096, 32),
]


def main() -> None:
    graph = erdos_renyi_gnm(num_vertices=260, num_edges=800, seed=3)
    edges = graph.degree_order().edges
    print(f"graph: {graph.num_vertices} vertices, {len(edges)} edges")
    print("running the SAME cache-oblivious algorithm against each cache level:\n")

    previous_total = None
    operations = set()
    print(f"{'level':9s} {'M':>6s} {'B':>4s} {'I/Os':>9s} {'hit rate':>9s} {'speedup vs prev':>16s}")
    for label, memory, block in HIERARCHY:
        vm = ObliviousVM(MachineParams(memory, block), IOStats())
        vector = edges_to_vector(vm, edges)
        sink = CountingSink()
        cache_oblivious_randomized(vm, vector, sink, seed=42)
        ratio = f"{previous_total / vm.stats.total:.2f}" if previous_total else "-"
        print(
            f"{label:9s} {memory:6d} {block:4d} {vm.stats.total:9d} "
            f"{vm.cache.hit_rate:9.3f} {ratio:>16s}"
        )
        previous_total = vm.stats.total
        operations.add(vm.stats.operations)

    print()
    print("triangles found at every level: identical (algorithm is deterministic given the seed)")
    print(
        "element accesses performed: "
        + ("identical across levels" if len(operations) == 1 else "DIFFER (bug!)")
        + " -- the algorithm never adapts to M or B; only the cache does"
    )


if __name__ == "__main__":
    main()
