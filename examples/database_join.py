"""The paper's database motivation, end to end.

A relation ``Sells(salesperson, brand, productType)`` in which every
salesperson sells the cross product of a brand set and a type set is not in
5th normal form: it equals the join of its three binary projections.  After
normalising the schema into those projections, answering "who sells what?"
means computing a 3-way cyclic join -- which is exactly triangle enumeration
on the union of three bipartite graphs.

The example builds a synthetic instance, verifies the join dependency,
reconstructs the relation three ways (in-memory relational join, triangle
enumeration with the paper's algorithm, triangle enumeration with a
block-nested-loop join plan) and compares the simulated I/O costs.

Run with::

    python examples/database_join.py
"""

import itertools
import random

from repro import MachineParams
from repro.joins.fifth_normal_form import decompose_sells, is_join_dependent
from repro.joins.relation import Relation
from repro.joins.triangle_join import triangle_join


def build_sells(num_salespeople: int = 60, num_brands: int = 25, num_types: int = 20) -> Relation:
    """A Sells relation where each salesperson sells brands x product types.

    Every salesperson is assigned a random brand set and a random type set
    and sells their cross product, so the relation satisfies the join
    dependency over its three binary projections (i.e. it is not in 5NF).
    """
    rng = random.Random(2014)
    brands = [f"brand{i}" for i in range(num_brands)]
    types = [f"type{i}" for i in range(num_types)]
    sells = Relation("Sells", ("salesperson", "brand", "productType"))
    for person_index in range(num_salespeople):
        person = f"sales{person_index}"
        own_brands = rng.sample(brands, k=rng.randint(2, 6))
        own_types = rng.sample(types, k=rng.randint(2, 6))
        for brand, product_type in itertools.product(own_brands, own_types):
            sells.add((person, brand, product_type))
    return sells


def main() -> None:
    sells = build_sells()
    print(f"Sells has {len(sells)} tuples over {sells.attributes}")
    print(f"join dependency over the three binary projections holds: {is_join_dependent(sells)}")

    sb, bt, st = decompose_sells(sells)
    print(f"decomposed into SB ({len(sb)}), BT ({len(bt)}), ST ({len(st)}) tuples")
    print()

    params = MachineParams(memory_words=128, block_words=16)
    ours_relation, ours = triangle_join(sb, bt, st, algorithm="cache_aware", params=params)
    bnlj_relation, bnlj = triangle_join(sb, bt, st, algorithm="bnlj", params=params)

    print(f"reconstructed Sells via triangle enumeration: {len(ours_relation)} tuples")
    print(f"matches the original relation: {ours_relation.rows() == sells.rows()}")
    print()
    print("simulated I/O cost of the two query plans on the same (M, B) machine:")
    print(f"  triangle enumeration (paper, Section 2): {ours.io.total:6d} I/Os")
    print(f"  pipelined block-nested-loop join plan:   {bnlj.io.total:6d} I/Os")
    print(f"  plans agree on the answer: {ours_relation.rows() == bnlj_relation.rows()}")


if __name__ == "__main__":
    main()
