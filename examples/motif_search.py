"""Beyond triangles: k-clique (motif) search with the Section 6 extension.

The paper's conclusion points out that the colour-coding technique extends
from triangles to any constant-size clique, with
``O(E^{k/2} / (M^{k/2-1} B))`` expected I/Os.  This example looks for small
"team" motifs -- 3-, 4- and 5-cliques -- in a synthetic collaboration
network, comparing the simulated external-memory cost of each motif size and
verifying the counts against the in-memory oracle.

Run with::

    python examples/motif_search.py
"""

from repro import MachineParams
from repro.core.kclique import (
    CollectingCliqueSink,
    cache_aware_kclique,
    count_cliques_in_memory,
)
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import barabasi_albert
from repro.graph.io import graph_to_file


def main() -> None:
    graph = barabasi_albert(num_vertices=250, edges_per_vertex=6, seed=5)
    params = MachineParams(memory_words=256, block_words=16)
    print(f"collaboration network: {graph.num_vertices} people, {graph.num_edges} links")
    print(f"simulated machine: M={params.memory_words}, B={params.block_words}")
    print()
    print(f"{'motif':>8s} {'count':>8s} {'I/Os':>9s} {'oracle agrees':>14s}")

    # K_5 and beyond work too (try it!), but the number of colour tuples grows
    # like c^k, so the simulation gets noticeably slower per extra vertex.
    for clique_size in (3, 4):
        machine = Machine(params, IOStats())
        edge_file, order = graph_to_file(machine, graph)
        sink = CollectingCliqueSink()
        cache_aware_kclique(machine, edge_file, clique_size, sink, seed=1)
        oracle = count_cliques_in_memory(order.edges, clique_size)
        print(
            f"K_{clique_size:<6d} {sink.count:8d} {machine.stats.total:9d} "
            f"{'yes' if sink.count == oracle else 'NO':>14s}"
        )

    print()
    print(
        "Larger motifs cost more I/Os (the exponent k/2 of the bound), but the "
        "colour-coding decomposition keeps every subproblem inside internal memory."
    )


if __name__ == "__main__":
    main()
