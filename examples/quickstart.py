"""Quickstart: enumerate the triangles of a small graph and read the I/O meter.

Run with::

    python examples/quickstart.py

The example builds a small random graph, enumerates its triangles with the
paper's cache-aware algorithm on a simulated external-memory machine
(M = 256 words, B = 16 words), and compares the simulated I/O count with the
Theorem 3 lower bound and with the Hu-Tao-Chung baseline.
"""

from repro import MachineParams, enumerate_triangles
from repro.analysis.bounds import lower_bound_io
from repro.graph.generators import erdos_renyi_gnm


def main() -> None:
    graph = erdos_renyi_gnm(num_vertices=400, num_edges=2000, seed=7)
    params = MachineParams(memory_words=256, block_words=16)

    result = enumerate_triangles(graph, algorithm="cache_aware", params=params, seed=1)
    print(f"graph: {graph.num_vertices} vertices, {result.num_edges} edges")
    print(f"triangles found: {result.triangle_count}")
    print("first five triangles:", sorted(tuple(sorted(t)) for t in result.triangles)[:5])
    print()
    print(f"simulated I/Os (cache-aware, Section 2): {result.io.total}")
    print(f"  reads={result.io.reads}  writes={result.io.writes}")
    print(f"  peak disk usage: {result.disk_peak_words} words (input is {result.num_edges})")

    bound = lower_bound_io(result.triangle_count, params)
    print(f"Theorem 3 lower bound for this output size: {bound:.0f} I/Os")

    baseline = enumerate_triangles(graph, algorithm="hu_tao_chung", params=params, collect=False)
    print(f"Hu-Tao-Chung baseline (SIGMOD'13): {baseline.io.total} I/Os")
    print()
    print(
        "The separation grows as E/M grows: rerun with a larger graph or a smaller "
        "memory to watch the sqrt(E/M) factor of the paper appear."
    )


if __name__ == "__main__":
    main()
